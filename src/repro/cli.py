"""Command-line interface.

``python -m repro <command>``:

========== ==========================================================
verify     check Condition 1 on a program (exit 0 iff it holds)
transform  run the offline pipeline; print or write the safe program
simulate   execute a program on the simulator, optionally with
           crashes, a protocol, and a space-time diagram
cfg        dump the (extended) CFG as Graphviz DOT
figures    print the Figure 8 / Figure 9 data tables
programs   list the shipped example programs
trace      inspect/filter/convert a recorded JSONL observability event
           log (``trace query LOG`` lists events matching rank/kind/
           time-window/span filters)
metrics    metric-artifact tooling (``metrics diff`` compares two
           metrics/rollup/BENCH JSONs under ratio thresholds)
chaos      run the chaos sweep, dumping diagnostics on failure
           (resumable via --resume, executor-fault injectable)
campaign   run a declarative scenario campaign on N worker processes
           with timeouts, retry/quarantine, and --resume restart
========== ==========================================================

Program arguments accept either a file path or ``@name`` for a shipped
program (see ``python -m repro programs``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.errors import ReproError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.printer import to_source
from repro.lang.programs import load_program, program_names


def _load(spec: str) -> ast.Program:
    if spec.startswith("@"):
        return load_program(spec[1:])
    return parse(Path(spec).read_text())


def _add_program_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "program",
        help="path to a MiniMP source file, or @name for a shipped program",
    )


def _cmd_programs(_args: argparse.Namespace) -> int:
    for name in program_names():
        print(name)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.phases.matching import build_extended_cfg
    from repro.phases.verification import check_condition1

    program = _load(args.program)
    ext = build_extended_cfg(program)
    result = check_condition1(
        ext, include_back_edge_paths=not args.loop_optimization
    )
    mode = "loop-optimised" if args.loop_optimization else "conservative"
    print(f"program   : {program.name}")
    print(f"mode      : {mode}")
    print(f"msg edges : {len(ext.message_edges)}")
    print(f"Condition 1 holds: {result.ok}")
    if not result.balanced:
        print(f"  {result.reason}")
    for violation in result.violations[:args.max_violations]:
        print(f"  violation: {violation.describe(ext)}")
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lang.validate import validate_program

    program = _load(args.program)
    params = tuple(args.param) if args.param else ("steps",)
    diagnostics = validate_program(program, params=params)
    for diagnostic in diagnostics:
        print(diagnostic)
    errors = [d for d in diagnostics if d.severity == "error"]
    if not diagnostics:
        print("clean: no diagnostics")
    return 1 if errors else 0


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro.phases.insertion import CostModel
    from repro.phases.pipeline import transform

    program = _load(args.program)
    model = CostModel(
        checkpoint_overhead=args.checkpoint_overhead,
        failure_rate=args.failure_rate,
        params={"steps": args.steps} if args.steps else {},
    )
    cache = None
    if args.cache:
        from repro.campaign.cache import TransformCache

        cache = TransformCache(args.cache)
    tracker = None
    if args.spans_out:
        from repro.obs.spans import SpanTracker

        tracker = SpanTracker()
    result = transform(
        program,
        cost_model=model,
        loop_optimization=args.loop_optimization,
        force_insertion=args.force_insertion,
        cache=cache,
        tracker=tracker,
    )
    if tracker is not None:
        Path(args.spans_out).write_text(
            tracker.chrome_trace_json(indent=2) + "\n"
        )
        print(f"# wrote span trace to {args.spans_out}", file=sys.stderr)
    if cache is not None:
        verdict = "hit" if cache.hits else "miss"
        print(f"# transform cache: {verdict} ({args.cache})",
              file=sys.stderr)
    from repro.phases.report import transform_report

    for line in transform_report(result).splitlines():
        print(f"# {line}", file=sys.stderr)
    source = to_source(result.program)
    if args.output:
        Path(args.output).write_text(source)
        print(f"# wrote {args.output}", file=sys.stderr)
    else:
        print(source, end="")
    return 0


def _cmd_cfg(args: argparse.Namespace) -> int:
    from repro.cfg.builder import build_cfg
    from repro.cfg.dot import to_dot
    from repro.phases.matching import build_extended_cfg

    program = _load(args.program)
    if args.extended:
        graph = build_extended_cfg(program)
    else:
        graph = build_cfg(program)
    print(to_dot(graph, name=program.name), end="")
    return 0


def _parse_crash(text: str):
    from repro.runtime.failures import CrashEvent

    try:
        time_text, rank_text = text.split(":", 1)
        return CrashEvent(time=float(time_text), rank=int(rank_text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"crash must be TIME:RANK, got {text!r}"
        ) from None


def _parse_fault(text: str):
    from repro.runtime.failures import (
        FaultKind,
        NetworkFaultEvent,
        NetworkFaultKind,
        StorageFaultEvent,
    )

    parts = text.split(":")
    network_kinds = {k.value for k in NetworkFaultKind}
    if parts and parts[0] in network_kinds:
        try:
            kind = NetworkFaultKind(parts[0])
            time = float(parts[1])
            src = int(parts[2])
            dst = int(parts[3])
            delay = float(parts[4]) if len(parts) > 4 else 0.0
            if len(parts) > 5:
                raise ValueError(text)
            return NetworkFaultEvent(
                time=time, kind=kind, src=src, dst=dst, delay=delay
            )
        except (ValueError, IndexError):
            kinds = "|".join(k.value for k in NetworkFaultKind)
            raise argparse.ArgumentTypeError(
                f"network fault must be KIND:TIME:SRC:DST[:DELAY] with "
                f"KIND one of {kinds}, got {text!r}"
            ) from None
    try:
        kind = FaultKind(parts[0])
        time = float(parts[1])
        rank = int(parts[2])
        number = int(parts[3]) if len(parts) > 3 and parts[3] else None
        replica = int(parts[4]) if len(parts) > 4 else 0
        if len(parts) > 5:
            raise ValueError(text)
        return StorageFaultEvent(
            time=time, rank=rank, kind=kind, number=number, replica=replica
        )
    except (ValueError, IndexError):
        kinds = "|".join(
            k.value for k in FaultKind
        ) + "|" + "|".join(k.value for k in NetworkFaultKind)
        raise argparse.ArgumentTypeError(
            f"fault must be KIND:TIME:RANK[:NUMBER[:REPLICA]] (storage) or "
            f"KIND:TIME:SRC:DST[:DELAY] (network) with "
            f"KIND one of {kinds}, got {text!r}"
        ) from None


def _parse_recovery_fault(text: str):
    from repro.runtime.failures import RecoveryFaultEvent, RecoveryFaultKind

    parts = text.split(":")
    try:
        kind = RecoveryFaultKind(parts[0])
        recovery = int(parts[1])
        rank = int(parts[2])
        attempts = int(parts[3]) if len(parts) > 3 else 1
        if len(parts) > 4:
            raise ValueError(text)
        return RecoveryFaultEvent(
            recovery=recovery, rank=rank, kind=kind, attempts=attempts
        )
    except (ValueError, IndexError):
        kinds = "|".join(k.value for k in RecoveryFaultKind)
        raise argparse.ArgumentTypeError(
            f"recovery fault must be KIND:RECOVERY:RANK[:ATTEMPTS] with "
            f"KIND one of {kinds}, got {text!r}"
        ) from None


_FAULT_PLAN_SCHEMA = (
    '{"max_failures": N, "crashes": [{"time", "rank"}], '
    '"storage_faults": [{"time", "rank", "kind", ...}], '
    '"network_faults": [{"time", "kind", "src", "dst", "delay"?}], '
    '"recovery_faults": [{"recovery", "rank", "kind", "attempts"?}]}'
)


def _load_fault_plan(path: str, crashes, faults, recovery_faults=()):
    """Build a FaultPlan from CLI events plus an optional JSON file.

    *faults* may mix storage and network fault events (as produced by
    ``--fault``); they are routed to the right plan field here.
    *recovery_faults* come from ``--recovery-fault``. The JSON schema
    mirrors the dataclasses::

        {"max_failures": 4,
         "crashes": [{"time": 10.0, "rank": 1}, ...],
         "storage_faults": [{"time": 5.0, "rank": 0, "kind": "bit-rot",
                             "number": 2, "replica": 0, "attempts": 1}, ...],
         "network_faults": [{"time": 4.0, "kind": "drop",
                             "src": 0, "dst": 1, "delay": 0.0}, ...],
         "recovery_faults": [{"recovery": 0, "rank": 1,
                              "kind": "crash-in-recovery",
                              "attempts": 1}, ...]}

    Unknown top-level keys are rejected (a typo like ``"netwrok_faults"``
    must not silently disable the faults it was meant to inject), and so
    are unknown per-event keys.
    """
    import json

    from repro.runtime.failures import (
        FaultPlan,
        NetworkFaultEvent,
        StorageFaultEvent,
    )

    from repro.errors import SimulationError

    crashes = list(crashes)
    storage_faults = [f for f in faults if isinstance(f, StorageFaultEvent)]
    network_faults = [f for f in faults if isinstance(f, NetworkFaultEvent)]
    recovery_faults = list(recovery_faults)
    max_failures = None
    if path:
        try:
            data = json.loads(Path(path).read_text())
            loaded = FaultPlan.from_json_dict(data)
        except SimulationError as exc:
            raise SimulationError(
                f"bad fault plan {path!r}: {exc} — expected "
                f"{_FAULT_PLAN_SCHEMA}"
            ) from exc
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise SimulationError(
                f"bad fault plan {path!r}: {exc!r} — expected "
                f"{_FAULT_PLAN_SCHEMA}"
            ) from exc
        crashes.extend(loaded.crashes)
        storage_faults.extend(loaded.storage_faults)
        network_faults.extend(loaded.network_faults)
        recovery_faults.extend(loaded.recovery_faults)
        max_failures = loaded.max_failures
    return FaultPlan(
        crashes=crashes,
        max_failures=max_failures,
        storage_faults=storage_faults,
        network_faults=network_faults,
        recovery_faults=recovery_faults,
    )


def _check_plan_ranks(plan, n_processes: int) -> None:
    """Fail fast (clean error, no traceback) on out-of-range ranks.

    Every rank mentioned by a crash, storage fault, or network fault
    must exist in the simulated system; a plan written for a bigger run
    silently doing nothing is the failure mode this guards against.
    """
    from repro.errors import SimulationError

    for crash in plan.crashes:
        if crash.rank >= n_processes:
            raise SimulationError(
                f"crash at t={crash.time} targets rank {crash.rank} but "
                f"the simulation has only {n_processes} processes (-n)"
            )
    for fault in plan.storage_faults:
        if fault.rank >= n_processes:
            raise SimulationError(
                f"storage fault at t={fault.time} targets rank "
                f"{fault.rank} but the simulation has only "
                f"{n_processes} processes (-n)"
            )
    for fault in plan.network_faults:
        if fault.src >= n_processes or fault.dst >= n_processes:
            raise SimulationError(
                f"network fault at t={fault.time} targets channel "
                f"{fault.src}->{fault.dst} but the simulation has only "
                f"{n_processes} processes (-n)"
            )
    for fault in plan.recovery_faults:
        if fault.rank >= n_processes:
            raise SimulationError(
                f"recovery fault in recovery {fault.recovery} targets "
                f"rank {fault.rank} but the simulation has only "
                f"{n_processes} processes (-n)"
            )


#: CLI protocol choices (the canonical registry lives in
#: :mod:`repro.protocols`; the name list is duplicated here only so
#: ``build_parser`` stays import-light).
_PROTOCOL_NAMES = (
    "none", "appl-driven", "sas", "cl", "uncoordinated", "cic",
    "msg-logging",
)

#: CLI checkpoint-content choices (canonical tuple:
#: :data:`repro.runtime.engine.CHECKPOINT_MODES`; duplicated here for
#: the same import-light reason as the protocol names — pinned against
#: drift by a test).
CHECKPOINT_MODES = ("full", "pruned", "delta", "pruned+delta")


def _make_protocol(name: str, period: float):
    from repro.protocols import make_protocol

    return make_protocol(name, period=period)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.runtime.engine import Simulation

    program = _load(args.program)
    plan = _load_fault_plan(
        args.fault_plan, args.crash, args.fault, args.recovery_fault
    )
    _check_plan_ranks(plan, args.n)
    protocol = _make_protocol(args.protocol, args.period)
    obs = None
    if args.trace_out or args.metrics_out:
        from repro.obs import Observability

        obs = Observability()
    sim = Simulation(
        program,
        args.n,
        params={"steps": args.steps} if args.steps else None,
        protocol=protocol,
        failure_plan=plan,
        seed=args.seed,
        storage_replicas=args.storage_replicas,
        observer=obs.bus if obs is not None else None,
        scheduler=args.scheduler,
        backend=args.backend,
        checkpoint_mode=args.checkpoint_mode,
        retain_k=args.retain_k,
    )
    result = sim.run()
    stats = result.stats
    print(f"completed         : {stats.completed}")
    print(f"verdict           : {result.verdict}")
    print(f"completion time   : {result.completion_time:.3f}")
    print(f"app messages      : {stats.app_messages}")
    print(f"control messages  : {stats.control_messages}")
    print(f"checkpoints       : {stats.checkpoints} "
          f"(forced: {stats.forced_checkpoints})")
    print(f"failures/rollbacks: {stats.failures}/{stats.rollbacks}")
    print(f"lost work         : {stats.lost_work:.3f}")
    if plan.storage_faults or args.storage_replicas > 1:
        print(f"storage faults    : write-failures={stats.storage_write_failures} "
              f"torn={stats.torn_writes} retries={stats.storage_retries} "
              f"bit-rot={stats.bit_rot_injected} "
              f"corrupt-detected={stats.corrupt_checkpoints}")
        print(f"degraded recovery : {stats.recovery_fallbacks} "
              f"(max fallback depth: {stats.max_fallback_depth})")
    if plan.recovery_faults or stats.recovery_retries:
        print(f"recovery superv.  : attempts={stats.recovery_attempts} "
              f"retries={stats.recovery_retries} "
              f"backoff={stats.recovery_backoff_time:.3f} "
              f"nested-crashes={stats.nested_crashes} "
              f"control-lost={stats.recovery_control_lost} "
              f"read-faults={stats.recovery_read_faults}")
    if args.retain_k is not None:
        print(f"retention (k={args.retain_k})   : "
              f"stored={stats.stored_checkpoints} "
              f"({stats.stored_bytes} bytes), "
              f"gc-collected={stats.gc_collected} "
              f"({stats.gc_reclaimed_bytes} bytes reclaimed)")
    if plan.network_faults:
        print(f"network faults    : dropped={stats.dropped_frames} "
              f"corrupt={stats.corrupt_frames} "
              f"delayed={stats.delayed_frames} "
              f"duplicated={stats.duplicate_frames} "
              f"(dups suppressed: {stats.dups_suppressed})")
        print(f"transport         : frames={stats.frames_sent} "
              f"retransmits={stats.retransmits} "
              f"acks={stats.ack_frames} acks-lost={stats.acks_lost}")
    if stats.rollbacks:
        # The raw trace keeps discarded-timeline checkpoint events, so
        # the positional straight-cut check is meaningless once a
        # rollback happened; judge the surviving timeline on stable
        # storage instead.
        from repro.runtime.chaos import storage_recovery_lines_consistent

        consistent = storage_recovery_lines_consistent(result, args.n)
    else:
        consistent = result.trace.all_straight_cuts_consistent()
    print(f"straight cuts are recovery lines: {consistent}")
    if args.spacetime:
        from repro.viz import render_spacetime

        print()
        print(render_spacetime(result.trace), end="")
    if args.export_trace:
        from repro.runtime.export import trace_to_json

        Path(args.export_trace).write_text(trace_to_json(result.trace))
        print(f"# wrote trace to {args.export_trace}", file=sys.stderr)
    if obs is not None and args.trace_out:
        Path(args.trace_out).write_text(obs.jsonl())
        print(f"# wrote event log to {args.trace_out}", file=sys.stderr)
    if obs is not None and args.metrics_out:
        Path(args.metrics_out).write_text(obs.metrics.to_json() + "\n")
        print(f"# wrote metrics to {args.metrics_out}", file=sys.stderr)
    if args.stats_json:
        import json

        payload = json.dumps(stats.as_dict(), indent=2, sort_keys=True)
        if args.stats_json == "-":
            print(payload)
        else:
            Path(args.stats_json).write_text(payload + "\n")
            print(f"# wrote stats to {args.stats_json}", file=sys.stderr)
    return 0 if stats.completed else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import figure8_series, figure9_series
    from repro.bench.figures import figure8_table, figure9_table

    if args.figure in ("8", "both"):
        print("Figure 8: overhead ratio vs number of processes")
        print(figure8_table())
        if args.chart:
            from repro.viz import curves_chart

            print()
            print(curves_chart(figure8_series(), log_y=True, y_label="r"))
    if args.figure == "both":
        print()
    if args.figure in ("9", "both"):
        print("Figure 9: overhead ratio vs message setup time")
        print(figure9_table())
        if args.chart:
            from repro.viz import curves_chart

            print()
            print(curves_chart(figure9_series(), log_y=True, y_label="r"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.workloads import (
        ProtocolRunSummary,
        run_protocol_comparison,
        standard_workloads,
    )
    from repro.runtime.failures import FailurePlan

    specs = {w.name: w for w in standard_workloads(steps=args.steps)}
    if args.workload not in specs:
        print(
            f"error: unknown workload {args.workload!r}; "
            f"known: {', '.join(sorted(specs))}",
            file=sys.stderr,
        )
        return 2
    plan = FailurePlan(crashes=list(args.crash))
    rows = run_protocol_comparison(
        specs[args.workload], period=args.period, failure_plan=plan
    )
    print(ProtocolRunSummary.header())
    for row in rows:
        print(row.row())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.causality.cuts import cut_is_consistent, orphan_messages
    from repro.causality.rollback_graph import max_consistent_cut
    from repro.runtime.export import trace_from_json

    trace = trace_from_json(Path(args.trace).read_text())
    print(f"processes        : {trace.n_processes}")
    print(f"events           : {len(trace.events)}")
    print(f"messages         : {trace.message_count()}")
    print(f"completion time  : {trace.completion_time():.3f}")
    max_index = trace.max_straight_cut_index()
    print(f"straight cuts    : R_1 .. R_{max_index}")
    inconsistent = []
    for index in range(1, max_index + 1):
        cut = trace.straight_cut(index)
        if cut is not None and not cut_is_consistent(cut):
            inconsistent.append(index)
    if inconsistent:
        print(f"NOT recovery lines: {inconsistent}")
        first = trace.straight_cut(inconsistent[0])
        for send, recv in orphan_messages(trace.events, first)[:3]:
            print(f"  orphan witness in R_{inconsistent[0]}: "
                  f"{send!r} -> {recv!r}")
    else:
        print("every straight cut is a recovery line")
    analysis = max_consistent_cut(
        trace.events, list(range(trace.n_processes))
    )
    print(f"max consistent cut: rollbacks {analysis.rollbacks}, "
          f"domino steps {analysis.domino_steps}")
    from repro.causality.zigzag import ZigzagAnalysis

    useless = ZigzagAnalysis(trace.events).useless_checkpoints()
    if useless:
        print(f"useless checkpoints (zigzag cycles): {useless}")
    else:
        print("no useless checkpoints (no zigzag cycles)")
    if args.spacetime:
        from repro.viz import render_spacetime

        print()
        print(render_spacetime(trace), end="")
    return 1 if inconsistent else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        chrome_trace_json,
        events_to_jsonl,
        read_event_log,
        summarize_events,
    )
    from repro.obs.query import filter_events, format_events

    query_mode = args.log == "query"
    if query_mode:
        if args.query_log is None:
            print("error: repro trace query needs a LOG argument",
                  file=sys.stderr)
            return 2
        log = args.query_log
    else:
        log = args.log
    events = read_event_log(log)
    filtering = (
        args.rank or args.category or args.kind
        or args.since is not None or args.until is not None or args.span
    )
    if query_mode or filtering:
        events = filter_events(
            events,
            ranks=args.rank if args.rank else None,
            categories=args.category if args.category else None,
            kinds=args.kind if args.kind else None,
            since=args.since,
            until=args.until,
            span=args.span,
        )

    def _write(text: str) -> None:
        if args.output:
            Path(args.output).write_text(text)
            print(f"# wrote {args.output}", file=sys.stderr)
        else:
            print(text, end="")

    if query_mode:
        _write(format_events(events))
    elif args.format == "summary":
        _write(summarize_events(events))
    elif args.format == "chrome":
        _write(chrome_trace_json(events, indent=2) + "\n")
    elif args.format == "jsonl":
        _write(events_to_jsonl(events))
    else:  # spacetime
        from repro.viz import render_spacetime_from_log

        _write(render_spacetime_from_log(log))
    return 0


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import (
        Threshold,
        diff_metrics,
        format_diff,
        load_metrics,
        parse_threshold_rule,
    )

    try:
        rules = [parse_threshold_rule(text) for text in args.threshold]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    default = Threshold(
        min_ratio=args.default_min, max_ratio=args.default_max
    )
    report = diff_metrics(
        load_metrics(args.before),
        load_metrics(args.after),
        rules=rules,
        default=default,
    )
    print(format_diff(report, verbose=args.verbose), end="")
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.runtime.chaos import CHAOS_PROTOCOLS, ChaosConfig, chaos_sweep
    from repro.runtime.transport import TransportConfig

    transport = TransportConfig(dedup=False) if args.broken_transport else None
    config = ChaosConfig(
        sim_seed=args.sim_seed,
        scheduler=args.scheduler,
        backend=args.backend,
        checkpoint_mode=args.checkpoint_mode,
        recovery_fault_probability=args.recovery_faults,
        retain_k=args.retain_k,
    )
    protocols = tuple(args.protocol) if args.protocol else CHAOS_PROTOCOLS
    executor_stats = None
    resilient_kwargs: dict = {}
    if (
        args.resume
        or args.timeout is not None
        or args.retries is not None
        or args.executor_faults > 0
    ):
        from repro.campaign import (
            ExecutorPolicy,
            ExecutorStats,
            draw_executor_faults,
        )

        executor_stats = ExecutorStats()
        fault_plan = None
        if args.executor_faults > 0:
            keys = [
                (protocol, seed)
                for protocol in protocols
                for seed in range(args.seeds)
            ]
            fault_plan = draw_executor_faults(
                keys,
                args.executor_fault_seed,
                probability=args.executor_faults,
            )
        resilient_kwargs = {
            "policy": ExecutorPolicy(
                timeout=args.timeout,
                max_retries=(
                    args.retries if args.retries is not None else 2
                ),
            ),
            "journal_path": args.resume,
            "executor_fault_plan": fault_plan,
            "executor_stats": executor_stats,
        }
    outcomes = chaos_sweep(
        range(args.seeds),
        protocols=protocols,
        config=config,
        transport_config=transport,
        artifacts_dir=args.artifacts,
        jobs=args.jobs,
        **resilient_kwargs,
    )
    failures = 0
    unrecoverable = 0
    for (protocol, seed), outcome in sorted(outcomes.items()):
        print(f"{protocol:>14s} seed {seed:>3d}: {outcome.describe()}")
        failures += 0 if outcome.ok else 1
        unrecoverable += 1 if outcome.unrecoverable else 0
    summary = f"{len(outcomes)} cell(s), {failures} failure(s)"
    if unrecoverable:
        summary += f", {unrecoverable} clean unrecoverable verdict(s)"
    print(summary)
    if executor_stats is not None:
        print(f"resilience: {executor_stats.describe()}")
    if args.metrics_out:
        from repro.campaign.executor import resolve_jobs
        from repro.obs.rollup import chaos_rollup, rollup_to_json

        Path(args.metrics_out).write_text(rollup_to_json(chaos_rollup(
            outcomes,
            jobs=resolve_jobs(args.jobs),
            executor=executor_stats,
        )))
        print(f"# wrote metrics rollup to {args.metrics_out}",
              file=sys.stderr)
    if failures and args.artifacts:
        print(f"# diagnostics under {args.artifacts}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        ExecutorFaultPlan,
        ExecutorPolicy,
        load_campaign,
        parse_worker_fault,
        quick_campaign,
        run_campaign,
    )

    if args.campaign == "@quick":
        specs = quick_campaign()
    elif args.campaign.startswith("@"):
        print(
            f"error: unknown built-in campaign {args.campaign!r}; "
            "available: @quick",
            file=sys.stderr,
        )
        return 2
    else:
        specs = load_campaign(Path(args.campaign).read_text())
    if args.backend is not None:
        specs = [replace(spec, backend=args.backend) for spec in specs]
    if args.checkpoint_mode is not None:
        specs = [
            replace(spec, checkpoint_mode=args.checkpoint_mode)
            for spec in specs
        ]
    fault_plan = None
    if args.inject_fault:
        fault_plan = ExecutorFaultPlan(
            dict(parse_worker_fault(text) for text in args.inject_fault)
        )
    progress = None
    if args.progress:
        from repro.obs.progress import ProgressReporter

        progress = ProgressReporter()
    tracker = None
    if args.spans_out:
        from repro.obs.spans import SpanTracker

        tracker = SpanTracker()
    result = run_campaign(
        specs,
        jobs=args.jobs,
        policy=ExecutorPolicy(
            timeout=args.timeout, max_retries=args.retries
        ),
        journal_path=args.resume,
        fault_plan=fault_plan,
        progress=progress,
        tracker=tracker,
    )
    width = max((len(cell.label) for cell in result.cells.values()),
                default=5)
    print(f"{'cell':<{width}s} {'ok':>4s} {'ckpts':>6s} {'msgs':>6s} "
          f"{'sim-time':>9s} {'wall-ms':>8s}")
    for label, cell in result.cells.items():
        wall = result.timings[label] * 1e3
        if cell.error is not None:
            print(f"{label:<{width}s} {'ERR':>4s} {cell.error}")
            continue
        stats = cell.stats or {}
        print(f"{label:<{width}s} {'yes' if cell.ok else 'NO':>4s} "
              f"{stats.get('checkpoints', 0):>6d} "
              f"{stats.get('app_messages', 0):>6d} "
              f"{cell.completion_time:>9.3f} {wall:>8.1f}")
    failures = len(result.failures)
    print(f"{len(result.cells)} cell(s), {failures} failure(s), "
          f"jobs={result.jobs}")
    if result.executor is not None:
        print(f"resilience: {result.executor.describe()}")
    if args.results_json:
        payload = result.to_json()
        if args.results_json == "-":
            print(payload)
        else:
            Path(args.results_json).write_text(payload + "\n")
            print(f"# wrote results to {args.results_json}",
                  file=sys.stderr)
    if args.metrics_out:
        from repro.obs.rollup import campaign_rollup, rollup_to_json

        Path(args.metrics_out).write_text(
            rollup_to_json(campaign_rollup(result))
        )
        print(f"# wrote metrics rollup to {args.metrics_out}",
              file=sys.stderr)
    if tracker is not None:
        Path(args.spans_out).write_text(
            tracker.chrome_trace_json(indent=2) + "\n"
        )
        print(f"# wrote span trace to {args.spans_out}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_optimal(args: argparse.Namespace) -> int:
    from repro.analysis.parameters import ModelParameters
    from repro.analysis.sensitivity import optimal_table

    counts = tuple(args.n) if args.n else (16, 64, 256, 512)
    print("Per-protocol optimal checkpoint intervals (T*) and ratios (r*)")
    print(optimal_table(ModelParameters(), counts))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Application-driven coordination-free checkpointing",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    programs = commands.add_parser("programs", help="list shipped programs")
    programs.set_defaults(func=_cmd_programs)

    verify = commands.add_parser("verify", help="check Condition 1")
    _add_program_argument(verify)
    verify.add_argument("--loop-optimization", action="store_true")
    verify.add_argument("--max-violations", type=int, default=5)
    verify.set_defaults(func=_cmd_verify)

    lint = commands.add_parser("lint", help="static program validation")
    _add_program_argument(lint)
    lint.add_argument("--param", action="append", metavar="NAME",
                      help="declare a run-time parameter (default: steps)")
    lint.set_defaults(func=_cmd_lint)

    transform = commands.add_parser("transform", help="run Phases I-III")
    _add_program_argument(transform)
    transform.add_argument("-o", "--output", help="write result here")
    transform.add_argument("--loop-optimization", action="store_true")
    transform.add_argument("--force-insertion", action="store_true")
    transform.add_argument("--checkpoint-overhead", type=float, default=10.0)
    transform.add_argument("--failure-rate", type=float, default=0.002)
    transform.add_argument("--steps", type=int, default=0,
                           help="value of the 'steps' parameter for costing")
    transform.add_argument("--cache", metavar="DIR",
                           help="content-addressed transform cache "
                                "directory; repeated transforms of the "
                                "same program are served from it")
    transform.add_argument("--spans-out", metavar="PATH",
                           help="write the per-phase spans (Phase I-IV "
                                "wall timings) as Chrome trace-event JSON")
    transform.set_defaults(func=_cmd_transform)

    cfg = commands.add_parser("cfg", help="dump the CFG as DOT")
    _add_program_argument(cfg)
    cfg.add_argument("--extended", action="store_true",
                     help="include Phase II message edges")
    cfg.set_defaults(func=_cmd_cfg)

    simulate = commands.add_parser("simulate", help="run on the simulator")
    _add_program_argument(simulate)
    simulate.add_argument("-n", type=int, default=4, help="process count")
    simulate.add_argument("--steps", type=int, default=5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--crash", type=_parse_crash, action="append",
                          default=[], metavar="TIME:RANK")
    simulate.add_argument("--fault", type=_parse_fault, action="append",
                          default=[], metavar="KIND:...",
                          help="inject a storage fault "
                               "(KIND:TIME:RANK[:NUM[:REP]], kind: "
                               "write-fail, torn-write, bit-rot, transient) "
                               "or a network fault "
                               "(KIND:TIME:SRC:DST[:DELAY], kind: drop, "
                               "duplicate, delay, corrupt, partition, heal)")
    simulate.add_argument("--recovery-fault", type=_parse_recovery_fault,
                          action="append", default=[],
                          metavar="KIND:RECOVERY:RANK[:ATTEMPTS]",
                          help="inject a fault into the RECOVERY-th "
                               "recovery operation (kind: "
                               "crash-in-recovery, restore-read-fail, "
                               "control-lost)")
    simulate.add_argument("--retain-k", type=int, default=None, metavar="K",
                          help="bounded-storage retention: keep at most K "
                               "checkpoints per rank, GC-protecting the "
                               "recovery line and its degraded fallbacks")
    simulate.add_argument("--fault-plan", metavar="PATH",
                          help="JSON file with crashes, storage_faults, "
                               "network_faults, and recovery_faults")
    simulate.add_argument("--storage-replicas", type=int, default=1,
                          metavar="N",
                          help="replicate stable storage N-way with "
                               "majority-quorum reads")
    simulate.add_argument("--protocol", choices=sorted(_PROTOCOL_NAMES),
                          default="appl-driven")
    simulate.add_argument("--scheduler", choices=("indexed", "reference"),
                          default="indexed",
                          help="engine scheduler: the indexed priority "
                               "queue or the original linear scan; runs "
                               "are byte-identical for both")
    simulate.add_argument("--backend", choices=("compiled", "reference"),
                          default="compiled",
                          help="process-execution backend: the closure "
                               "compiler or the tree-walking "
                               "interpreter; runs are byte-identical "
                               "for both")
    simulate.add_argument("--checkpoint-mode", choices=CHECKPOINT_MODES,
                          default="full",
                          help="checkpoint content policy: full "
                               "snapshots, liveness-pruned snapshots, "
                               "delta-encoded payloads, or both; "
                               "recovery is byte-identical for all")
    simulate.add_argument("--period", type=float, default=10.0,
                          help="checkpoint period for timer protocols")
    simulate.add_argument("--spacetime", action="store_true",
                          help="print an ASCII space-time diagram")
    simulate.add_argument("--export-trace", metavar="PATH",
                          help="write the execution trace as JSON")
    simulate.add_argument("--trace-out", metavar="PATH",
                          help="record the run's observability event log "
                               "(vector-clock-stamped JSONL; see "
                               "'repro trace')")
    simulate.add_argument("--metrics-out", metavar="PATH",
                          help="write the metrics registry (counters, "
                               "gauges, histograms) as JSON")
    simulate.add_argument("--stats-json", metavar="PATH",
                          help="write SimulationStats as JSON ('-' for "
                               "stdout)")
    simulate.set_defaults(func=_cmd_simulate)

    figures = commands.add_parser("figures", help="print Figure 8/9 tables")
    figures.add_argument("--figure", choices=("8", "9", "both"),
                         default="both")
    figures.add_argument("--chart", action="store_true",
                         help="also draw ASCII charts (log-scale y)")
    figures.set_defaults(func=_cmd_figures)

    compare = commands.add_parser(
        "compare", help="run every protocol on one workload"
    )
    compare.add_argument("workload", help="a standard workload name")
    compare.add_argument("--steps", type=int, default=12)
    compare.add_argument("--period", type=float, default=6.0)
    compare.add_argument("--crash", type=_parse_crash, action="append",
                         default=[], metavar="TIME:RANK")
    compare.set_defaults(func=_cmd_compare)

    analyze = commands.add_parser(
        "analyze", help="consistency analysis of an exported trace"
    )
    analyze.add_argument("trace", help="path to a JSON trace file")
    analyze.add_argument("--spacetime", action="store_true")
    analyze.set_defaults(func=_cmd_analyze)

    trace = commands.add_parser(
        "trace", help="inspect, filter, or convert a recorded JSONL "
                      "event log"
    )
    trace.add_argument("log", help="path to a JSONL event log "
                                   "(--trace-out or a flight-recorder "
                                   "dump), or the word 'query' followed "
                                   "by the log path to list matching "
                                   "events")
    trace.add_argument("query_log", nargs="?", help=argparse.SUPPRESS)
    trace.add_argument("--format", choices=("summary", "chrome", "jsonl",
                                            "spacetime"),
                       default="summary",
                       help="summary digest, Chrome trace-event JSON "
                            "(load in chrome://tracing or Perfetto), "
                            "normalised JSONL, or an ASCII space-time "
                            "diagram with recovery lines")
    trace.add_argument("--rank", type=int, action="append", metavar="R",
                       help="keep only events published by rank R "
                            "(repeatable)")
    trace.add_argument("--category", action="append", metavar="CAT",
                       help="keep only events of this category "
                            "(engine, transport, storage, protocol, "
                            "span; repeatable)")
    trace.add_argument("--kind", action="append", metavar="NAME",
                       help="keep only events with this name "
                            "(e.g. checkpoint, retransmit; repeatable)")
    trace.add_argument("--since", type=float, default=None, metavar="T",
                       help="keep only events at simulated time >= T")
    trace.add_argument("--until", type=float, default=None, metavar="T",
                       help="keep only events at simulated time <= T")
    trace.add_argument("--span", metavar="NAME",
                       help="keep only events inside a recorded span "
                            "of this name (e.g. recovery.attempt)")
    trace.add_argument("-o", "--output", metavar="PATH",
                       help="write here instead of stdout")
    trace.set_defaults(func=_cmd_trace)

    metrics = commands.add_parser(
        "metrics", help="work with metric JSON artifacts"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command",
                                         required=True)
    metrics_diff = metrics_sub.add_parser(
        "diff", help="compare two metrics/rollup/BENCH JSON files "
                     "with per-metric ratio thresholds"
    )
    metrics_diff.add_argument("before", help="baseline metrics JSON "
                                             "(registry dump, campaign "
                                             "rollup, or BENCH report)")
    metrics_diff.add_argument("after", help="current metrics JSON of "
                                            "any supported schema")
    metrics_diff.add_argument("--threshold", action="append", default=[],
                              metavar="PATTERN:min=X[,max=Y]",
                              help="ratio bound for metrics matching "
                                   "the fnmatch PATTERN, e.g. "
                                   "'*.speedup:min=0.5' (repeatable; "
                                   "first match wins)")
    metrics_diff.add_argument("--default-min", type=float, default=None,
                              metavar="R",
                              help="floor on after/before for metrics "
                                   "no --threshold matches")
    metrics_diff.add_argument("--default-max", type=float, default=None,
                              metavar="R",
                              help="ceiling on after/before for metrics "
                                   "no --threshold matches")
    metrics_diff.add_argument("-v", "--verbose", action="store_true",
                              help="also print passing and added/"
                                   "removed metrics")
    metrics_diff.set_defaults(func=_cmd_metrics_diff)

    chaos = commands.add_parser(
        "chaos", help="run the chaos sweep; dump diagnostics on failure"
    )
    chaos.add_argument("--seeds", type=int, default=10,
                       help="number of schedule seeds per protocol")
    chaos.add_argument("--protocol", action="append", metavar="NAME",
                       help="protocol(s) to sweep (default: the chaos set)")
    chaos.add_argument("--sim-seed", type=int, default=0,
                       help="simulator seed of the workload")
    chaos.add_argument("--scheduler", choices=("indexed", "reference"),
                       default="indexed",
                       help="engine scheduler; verdicts are "
                            "byte-identical for both")
    chaos.add_argument("--backend", choices=("compiled", "reference"),
                       default="compiled",
                       help="process-execution backend; verdicts and "
                            "artifacts are byte-identical for both")
    chaos.add_argument("--checkpoint-mode", choices=CHECKPOINT_MODES,
                       default="full",
                       help="checkpoint content policy; verdicts are "
                            "byte-identical for every mode")
    chaos.add_argument("--recovery-faults", type=float, default=0.0,
                       metavar="P",
                       help="per-slot probability of drawing a "
                            "recovery-time fault (nested crash, "
                            "restore-read failure, lost control traffic) "
                            "alongside each crash")
    chaos.add_argument("--retain-k", type=int, default=None, metavar="K",
                       help="run every schedule under bounded-storage "
                            "retention (at most K checkpoints per rank)")
    chaos.add_argument("--artifacts", metavar="DIR",
                       help="on failure (or a clean unrecoverable "
                            "verdict), write flight-recorder dump, "
                            "schedule, and ddmin-shrunk counterexample here")
    chaos.add_argument("--broken-transport", action="store_true",
                       help="disable duplicate suppression (test hook that "
                            "forces failures, exercising the artifact dump)")
    chaos.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (0 = all "
                            "cores); verdicts are byte-identical for "
                            "any N")
    chaos.add_argument("--resume", metavar="JOURNAL",
                       help="fsync'd JSONL journal of finished cells; "
                            "an existing journal is resumed (finished "
                            "cells are skipped), a missing one is "
                            "created — a killed sweep restarts where "
                            "it stopped")
    chaos.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-cell wall-clock budget in seconds "
                            "(enforced with --jobs >= 2); over-budget "
                            "cells are killed, retried, and finally "
                            "quarantined")
    chaos.add_argument("--retries", type=int, default=None, metavar="N",
                       help="executor re-attempts per cell before "
                            "quarantine (default 2 when resilient "
                            "mode is active)")
    chaos.add_argument("--executor-faults", type=float, default=0.0,
                       metavar="P",
                       help="per-cell probability of injecting a "
                            "deterministic executor fault "
                            "(crash/hang/raise worker shim) — the "
                            "harness testing its own resilience")
    chaos.add_argument("--executor-fault-seed", type=int, default=0,
                       metavar="SEED",
                       help="seed of the executor-fault draw")
    chaos.add_argument("--metrics-out", metavar="PATH",
                       help="write the sweep's metric rollup "
                            "(deterministic aggregate + per-cell "
                            "verdict counters) as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    campaign = commands.add_parser(
        "campaign", help="run a declarative scenario campaign in parallel"
    )
    campaign.add_argument("campaign",
                          help="path to a campaign JSON file "
                               '({"cells": [...]} of scenario specs), '
                               "or @quick for the built-in demo matrix")
    campaign.add_argument("-j", "--jobs", type=int, default=0, metavar="N",
                          help="worker processes (0 = all cores, the "
                               "default); results are byte-identical "
                               "for any N")
    campaign.add_argument("--results-json", metavar="PATH",
                          help="write the deterministic campaign result "
                               "as JSON ('-' for stdout)")
    campaign.add_argument("--resume", metavar="JOURNAL",
                          help="fsync'd JSONL journal of finished cells "
                               "keyed by label and content hash; an "
                               "existing journal is resumed (finished "
                               "cells are skipped), a missing one is "
                               "created — a SIGKILL'd campaign restarts "
                               "where it stopped and its artifact stays "
                               "byte-identical to a clean run")
    campaign.add_argument("--timeout", type=float, default=None,
                          metavar="S",
                          help="per-cell wall-clock budget in seconds "
                               "(enforced with --jobs >= 2); over-budget "
                               "cells are killed, retried, and finally "
                               "quarantined")
    campaign.add_argument("--retries", type=int, default=2, metavar="N",
                          help="executor re-attempts per cell before it "
                               "is quarantined into a structured error "
                               "outcome (default 2)")
    campaign.add_argument("--inject-fault", action="append", default=[],
                          metavar="LABEL:KIND[:UNTIL]",
                          help="inject a deterministic executor fault "
                               "on one cell (kind: crash, hang, raise; "
                               "UNTIL = last faulting attempt, default "
                               "forever) — for testing the executor's "
                               "own resilience")
    campaign.add_argument("--metrics-out", metavar="PATH",
                          help="write the campaign metric rollup "
                               "(campaign_metrics.json: deterministic "
                               "aggregate + per-cell metrics, wall-clock "
                               "diagnostics separate) here")
    campaign.add_argument("--progress", action="store_true",
                          help="stream line-oriented progress to stderr "
                               "as cells finish (never part of any "
                               "artifact)")
    campaign.add_argument("--spans-out", metavar="PATH",
                          help="write the executor's cell-lifecycle "
                               "spans as Chrome trace-event JSON "
                               "(wall-clock; diagnostic only)")
    campaign.add_argument("--backend", choices=("compiled", "reference"),
                          default=None,
                          help="override every cell's execution backend "
                               "(default: honour each spec's own "
                               "backend field); results are "
                               "byte-identical for both, modulo the "
                               "spec_hash recorded per cell")
    campaign.add_argument("--checkpoint-mode", choices=CHECKPOINT_MODES,
                          default=None,
                          help="override every cell's checkpoint "
                               "content policy (default: honour each "
                               "spec's own checkpoint_mode field); "
                               "results differ only in stored payload "
                               "bytes and the recorded spec_hash")
    campaign.set_defaults(func=_cmd_campaign)

    optimal = commands.add_parser(
        "optimal", help="per-protocol optimal checkpoint intervals"
    )
    optimal.add_argument("-n", type=int, action="append",
                         help="system size(s) to tabulate")
    optimal.set_defaults(func=_cmd_optimal)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
