#!/usr/bin/env python3
"""The paper's running example, end to end (Figures 1-4).

Shows the full Section 2/3 narrative on real artifacts:

- the Figure 1 Jacobi program and its CFG (printed as Graphviz DOT);
- the Figure 2 odd/even variant, its extended CFG with message edges,
  and the Condition 1 violation (the exact offending path);
- an execution of the unsafe variant exhibiting the Figure 3
  inconsistent straight cut, with the orphan message as witness;
- Algorithm 3.2 repairing Figure 2 into (structurally) Figure 1, in
  both conservative and loop-optimised modes.

Run: ``python examples/jacobi_transform.py``
"""

from repro import build_cfg, check_condition1, ensure_recovery_lines, to_source
from repro.causality.cuts import cut_is_consistent, orphan_messages
from repro.cfg import to_dot
from repro.lang.printer import ast_equal
from repro.lang.programs import jacobi, jacobi_odd_even
from repro.phases.matching import build_extended_cfg
from repro.runtime import Simulation


def main() -> None:
    print("=== Figure 1: the safe Jacobi program ===")
    safe = jacobi()
    print(to_source(safe))
    verdict = check_condition1(build_extended_cfg(safe))
    print(f"Condition 1 holds: {verdict.ok}")

    print("\n=== Figure 2: the odd/even variant ===")
    unsafe = jacobi_odd_even()
    print(to_source(unsafe))

    print("=== Figure 4: its extended CFG (message edges dashed) ===")
    ext = build_extended_cfg(unsafe)
    print(to_dot(ext, name="figure4"))

    verdict = check_condition1(ext)
    print(f"Condition 1 holds: {verdict.ok}")
    violation = verdict.violations[0]
    print(f"offending path (S_{violation.index}): "
          + " -> ".join(repr(ext.cfg.node(n)) for n in violation.path))

    print("\n=== Figure 3: an execution with an inconsistent straight cut ===")
    trace = Simulation(unsafe, 4, params={"steps": 4}).run().trace
    for index in range(1, trace.max_straight_cut_index() + 1):
        cut = trace.straight_cut(index)
        consistent = cut_is_consistent(cut)
        print(f"R_{index}: recovery line = {consistent}")
        if not consistent:
            send, recv = orphan_messages(trace.events, cut)[0]
            print(f"  orphan witness: {send!r} received as {recv!r}")
            break

    print("\n=== Algorithm 3.2: conservative repair ===")
    repaired = ensure_recovery_lines(unsafe)
    for move in repaired.moves:
        print(f"  - {move.description}")
    print(f"result structurally equals Figure 1: "
          f"{ast_equal(repaired.program.body, jacobi().body)}")

    print("\n=== Algorithm 3.2: loop-optimised repair ===")
    optimised = ensure_recovery_lines(unsafe, loop_optimization=True)
    for move in optimised.moves:
        print(f"  - {move.description}")
    print(f"ordering constraints: {len(optimised.ordering_constraints)}")
    print(to_source(optimised.program))

    for variant in (repaired.program, optimised.program):
        trace = Simulation(variant, 4, params={"steps": 4}).run().trace
        assert trace.all_straight_cuts_consistent()
    print("both repaired variants empirically safe.")


if __name__ == "__main__":
    main()
