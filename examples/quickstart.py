#!/usr/bin/env python3
"""Quickstart: transform a program, validate safety, survive a crash.

Walks the full lifecycle on an unsafe program:

1. parse MiniMP source whose checkpoint placement breaks straight cuts;
2. show the static verdict (Condition 1 violated);
3. run Phase III (Algorithm 3.2) and print the repaired source;
4. simulate the repaired program with a mid-run crash and confirm the
   coordination-free recovery reaches the same final state as a
   failure-free run.

Run: ``python examples/quickstart.py``
"""

from repro import (
    FailurePlan,
    Simulation,
    parse,
    to_source,
    transform,
    verify_program,
)
from repro.protocols import ApplicationDrivenProtocol

SOURCE = """\
program heat_exchange():
    x = init(myrank)
    i = 0
    while i < steps:
        if myrank % 2 == 0:
            send(myrank + 1, x)
            y = recv(myrank + 1)
            checkpoint
        else:
            y = recv(myrank - 1)
            send(myrank - 1, x)
            checkpoint
        x = combine(x, y)
        i = i + 1
"""


def main() -> None:
    program = parse(SOURCE)

    print("=== 1. Static verdict on the original program ===")
    verdict = verify_program(program)
    print(f"Condition 1 holds: {verdict.ok}")
    for violation in verdict.violations[:2]:
        print(f"  violating path: {violation.describe_short()}"
              if hasattr(violation, "describe_short")
              else f"  violation in S_{violation.index}")

    print("\n=== 2. Offline transformation (Phases I-III) ===")
    result = transform(program)
    print(f"moves performed: {len(result.placement.moves)}")
    for move in result.placement.moves:
        print(f"  - {move.description}")
    print("\nTransformed source:")
    print(to_source(result.program))

    print("=== 3. Crash-recovery simulation ===")
    baseline = Simulation(result.program, 4, params={"steps": 8}).run()
    crashed = Simulation(
        result.program,
        4,
        params={"steps": 8},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=FailurePlan.single(9.5, rank=2),
    ).run()
    print(f"failure-free completion time : {baseline.completion_time:8.2f}")
    print(f"with crash + recovery        : {crashed.completion_time:8.2f}")
    print(f"control messages             : {crashed.stats.control_messages}")
    print(f"forced checkpoints           : {crashed.stats.forced_checkpoints}")
    print(f"rollbacks                    : {crashed.stats.rollbacks}")
    same = crashed.final_env == baseline.final_env
    print(f"final states identical       : {same}")
    assert same and crashed.stats.control_messages == 0
    print("\nCoordination-free recovery verified.")


if __name__ == "__main__":
    main()
