#!/usr/bin/env python3
"""Reproduce the paper's evaluation: Figures 8 and 9, plus the
empirical protocol comparison the paper lacks.

Prints:

1. the Figure 8 table (overhead ratio vs number of processes) from the
   closed-form model with the paper's Starfish constants;
2. the Figure 9 table (overhead ratio vs message setup time w_m);
3. a cross-validation of the model against its Markov chain and a
   Monte Carlo simulation; and
4. a simulator-based comparison of all five protocols on the same
   workload with an injected failure.

Run: ``python examples/protocol_comparison.py``
"""

from repro.analysis import (
    IntervalMarkovChain,
    STARFISH_DEFAULTS,
    figure8_series,
    figure9_series,
    gamma_closed_form,
    simulate_interval_time,
    system_failure_rate,
)
from repro.bench.figures import (
    figure8_table,
    figure9_table,
    shape_check_figure8,
    shape_check_figure9,
)
from repro.bench.workloads import (
    ProtocolRunSummary,
    run_protocol_comparison,
    standard_workloads,
)
from repro.runtime import FailurePlan


def main() -> None:
    print("=== Figure 8: overhead ratio vs number of processes ===")
    print(figure8_table())
    problems = shape_check_figure8(figure8_series())
    print(f"shape claims: {'ALL HOLD' if not problems else problems}")

    print("\n=== Figure 9: the communication setup (w_m) effect ===")
    print(figure9_table())
    problems = shape_check_figure9(figure9_series())
    print(f"shape claims: {'ALL HOLD' if not problems else problems}")

    print("\n=== Model cross-validation (Figure 7 chain) ===")
    lam = system_failure_rate(STARFISH_DEFAULTS, 256)
    p = STARFISH_DEFAULTS
    args = (p.interval, p.checkpoint_overhead, p.recovery_overhead,
            p.checkpoint_latency)
    chain = IntervalMarkovChain(lam, *args)
    closed = gamma_closed_form(lam, *args)
    monte = simulate_interval_time(lam, *args, trials=20_000)
    print(f"Γ closed form     : {closed:.4f}")
    print(f"Γ two-path        : {chain.expected_time_two_path():.4f}")
    print(f"Γ linear system   : {chain.expected_time_linear_system():.4f}")
    print(f"Γ Monte Carlo     : {monte.mean:.4f} ± {monte.std_error:.4f}")

    print("\n=== Empirical comparison (simulator, jacobi, 1 failure) ===")
    workload = standard_workloads(steps=12)[0]
    rows = run_protocol_comparison(
        workload, period=6.0, failure_plan=FailurePlan.single(14.3, 2)
    )
    print(ProtocolRunSummary.header())
    for row in rows:
        print(row.row())
    appl = next(r for r in rows if r.protocol == "appl-driven")
    print(
        f"\napplication-driven: {appl.control_messages} control messages, "
        f"{appl.forced_checkpoints} forced checkpoints — coordination-free."
    )


if __name__ == "__main__":
    main()
