#!/usr/bin/env python3
"""MPMD task farm: different programs per rank, one offline analysis.

The paper notes its approach extends to MPMD when all source files are
available. This example builds a coordinator/worker task farm from two
separate MiniMP programs, merges them with rank dispatch, runs the
offline pipeline (with a *calibrated* cost model obtained by profiling
a short run, as Phase I prescribes), and validates recovery under a
crash — with the space-time diagram of the recovered run.

Run: ``python examples/mpmd_farm.py``
"""

from repro import FailurePlan, Simulation, to_source, verify_program
from repro.lang.mpmd import RankSet, Role, combine_mpmd
from repro.lang.parser import parse
from repro.phases.calibration import calibrate_cost_model
from repro.phases.placement import ensure_recovery_lines
from repro.protocols import ApplicationDrivenProtocol
from repro.viz import render_spacetime

COORDINATOR = """\
program coordinator():
    i = 0
    while i < steps:
        task = init(i)
        w = 1
        while w < nprocs:
            send(w, combine(task, w))
            w = w + 1
        w = 1
        while w < nprocs:
            r = recv(w)
            task = combine(task, r)
            w = w + 1
        checkpoint
        i = i + 1
"""

WORKER = """\
program worker():
    i = 0
    while i < steps:
        job = recv(0)
        compute(4)
        send(0, relax(job, myrank))
        checkpoint
        i = i + 1
"""


def main() -> None:
    print("=== 1. Merge MPMD roles into one analysable program ===")
    combined = combine_mpmd(
        [
            Role(parse(COORDINATOR), RankSet.exact(0)),
            Role(parse(WORKER), RankSet.rest()),
        ],
        name="task_farm",
    )
    conservative = verify_program(combined).ok
    print(f"Condition 1 (conservative) on merged program: {conservative}")

    print("\n=== 2. Calibrate the cost model by profiling ===")
    report = calibrate_cost_model(
        combined, 4, params={"steps": 50}, profile_steps=2
    )
    print(f"messages observed : {report.messages_observed}")
    print(f"estimated delay   : {report.estimator.estimate:.3f} "
          f"(timeout bound {report.estimator.timeout:.3f})")

    print("\n=== 3. Repair the placement (Algorithm 3.2) ===")
    repaired = ensure_recovery_lines(combined)
    for move in repaired.moves:
        print(f"  - {move.description}")
    print(f"verified: {verify_program(repaired.program).ok}")
    print("\nFinal program:")
    print(to_source(repaired.program))

    print("=== 4. Crash a worker mid-run ===")
    baseline = Simulation(repaired.program, 4, params={"steps": 6}).run()
    crashed = Simulation(
        repaired.program,
        4,
        params={"steps": 6},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=FailurePlan.single(20.0, rank=3),
    ).run()
    print(f"completed: {crashed.stats.completed}, "
          f"control messages: {crashed.stats.control_messages}, "
          f"rollbacks: {crashed.stats.rollbacks}")
    print(f"final states identical to failure-free run: "
          f"{crashed.final_env == baseline.final_env}")
    print()
    print(render_spacetime(crashed.trace, width=76), end="")
    assert crashed.final_env == baseline.final_env


if __name__ == "__main__":
    main()
