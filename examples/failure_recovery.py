#!/usr/bin/env python3
"""Failure storms and the domino effect.

Two experiments the paper motivates but cannot run analytically:

1. **Failure storm** — the application-driven protocol survives a
   random burst of crashes (exponential arrivals) with bounded
   rollback: every recovery restores the deepest common straight cut,
   never more than one checkpoint interval per process.
2. **Domino effect** — on a chatty ping-pong workload, uncoordinated
   checkpointing cascades past multiple checkpoints at recovery, while
   the application-driven placement never rolls back further than the
   latest straight cut.

Run: ``python examples/failure_recovery.py``
"""

from repro.bench.workloads import strip_checkpoints
from repro.lang.programs import pingpong, ring_pipeline
from repro.protocols import ApplicationDrivenProtocol, UncoordinatedProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.failures import exponential_failures


def failure_storm() -> None:
    print("=== 1. Failure storm (application-driven) ===")
    program = ring_pipeline()
    baseline = Simulation(program, 5, params={"steps": 20}).run()
    plan = exponential_failures(
        5, failure_rate=0.02, horizon=baseline.completion_time * 2,
        seed=11, max_failures=6,
    )
    print("crash schedule:",
          [(round(c.time, 1), f"P{c.rank}") for c in plan.effective()])
    protocol = ApplicationDrivenProtocol()
    stormy = Simulation(
        program, 5, params={"steps": 20},
        protocol=protocol, failure_plan=plan,
    ).run()
    print(f"failures applied      : {stormy.stats.failures}")
    print(f"rollbacks             : {stormy.stats.rollbacks}")
    print(f"recovered to cuts R_i : {protocol.recovered_to}")
    print(f"lost work             : {stormy.stats.lost_work:.2f}")
    print(f"completion time       : {stormy.completion_time:.2f} "
          f"(failure-free: {baseline.completion_time:.2f})")
    same = stormy.final_env == baseline.final_env
    print(f"final states identical: {same}")
    assert same


def domino() -> None:
    print("\n=== 2. Domino effect (uncoordinated vs application-driven) ===")
    chatty = pingpong()
    plan = FailurePlan.single(21.0, rank=1)

    uncoordinated = UncoordinatedProtocol(period=6, stagger=0.9)
    run_unc = Simulation(
        strip_checkpoints(chatty), 4, params={"steps": 60},
        protocol=uncoordinated, failure_plan=plan,
    ).run()
    depths = uncoordinated.rollback_depths[0]
    print(f"uncoordinated : domino steps = {uncoordinated.domino_steps[0]}, "
          f"per-process rollback depths = {depths}, "
          f"lost work = {run_unc.stats.lost_work:.2f}")

    appl = ApplicationDrivenProtocol()
    run_appl = Simulation(
        pingpong(), 4, params={"steps": 60},
        protocol=appl,
        failure_plan=FailurePlan.single(21.0, rank=1),
    ).run()
    print(f"appl-driven   : recovered to R_{appl.recovered_to[0]}, "
          f"lost work = {run_appl.stats.lost_work:.2f} "
          f"(never beyond the latest straight cut)")


def main() -> None:
    failure_storm()
    domino()


if __name__ == "__main__":
    main()
