"""Figure 7 — the interval Markov chain and its Γ computations.

Benchmarks the three analytic routes to ``Γ`` (closed form, two-path
expansion, linear-system solver) plus the Monte Carlo estimator, and
asserts their mutual agreement at the paper's parameter point.
"""

import pytest

from repro.analysis.markov import IntervalMarkovChain
from repro.analysis.montecarlo import simulate_interval_time
from repro.analysis.overhead import gamma_closed_form
from repro.analysis.parameters import STARFISH_DEFAULTS, system_failure_rate

LAM = system_failure_rate(STARFISH_DEFAULTS, 256)
ARGS = dict(
    interval=STARFISH_DEFAULTS.interval,
    total_overhead=STARFISH_DEFAULTS.checkpoint_overhead,
    recovery=STARFISH_DEFAULTS.recovery_overhead,
    total_latency=STARFISH_DEFAULTS.checkpoint_latency,
)


def test_bench_gamma_closed_form(benchmark):
    gamma = benchmark(gamma_closed_form, LAM, *ARGS.values())
    assert gamma > ARGS["interval"]


def test_bench_gamma_two_path(benchmark):
    chain = IntervalMarkovChain(LAM, **ARGS)
    gamma = benchmark(chain.expected_time_two_path)
    assert gamma == pytest.approx(gamma_closed_form(LAM, *ARGS.values()))


def test_bench_gamma_linear_system(benchmark):
    chain = IntervalMarkovChain(LAM, **ARGS)
    gamma = benchmark(chain.expected_time_linear_system)
    assert gamma == pytest.approx(gamma_closed_form(LAM, *ARGS.values()))


def test_bench_gamma_monte_carlo(benchmark):
    estimate = benchmark.pedantic(
        simulate_interval_time,
        args=(LAM,),
        kwargs=dict(**ARGS, trials=20_000, seed=0),
        rounds=3,
        iterations=1,
    )
    closed = gamma_closed_form(LAM, *ARGS.values())
    print(
        f"\nMonte Carlo Γ = {estimate.mean:.3f} ± {estimate.std_error:.3f} "
        f"vs closed form {closed:.3f} "
        f"(mean failures/interval: {estimate.mean_failures:.4f})"
    )
    assert estimate.within(closed, sigmas=4.0)
