"""Empirical protocol comparison on the simulator (V4/V5).

The paper's evaluation is analytic; this bench is the empirical leg:
one workload, five protocols, same seed and failure plan. It prints the
comparison table, asserts the coordination-freedom and domino claims,
and times the application-driven run.
"""

from repro.bench.workloads import (
    ProtocolRunSummary,
    run_protocol_comparison,
    standard_workloads,
    strip_checkpoints,
)
from repro.lang.programs import jacobi, pingpong
from repro.protocols import ApplicationDrivenProtocol, UncoordinatedProtocol
from repro.runtime import FailurePlan, Simulation


def test_bench_protocol_comparison_table(benchmark):
    workload = standard_workloads(steps=12)[0]
    plan = FailurePlan.single(14.3, 2)

    rows = benchmark.pedantic(
        run_protocol_comparison,
        args=(workload,),
        kwargs=dict(period=6.0, failure_plan=plan),
        rounds=2,
        iterations=1,
    )
    print("\n=== Protocol comparison (jacobi, 1 failure) ===")
    print(ProtocolRunSummary.header())
    for row in rows:
        print(row.row())

    appl = next(r for r in rows if r.protocol == "appl-driven")
    assert appl.control_messages == 0
    assert appl.forced_checkpoints == 0
    for row in rows:
        assert row.completed


def test_bench_application_driven_failure_run(benchmark):
    """Time one full appl-driven run with recovery (the V4 scenario)."""

    def run_once():
        return Simulation(
            jacobi(),
            4,
            params={"steps": 12},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan.single(14.3, 2),
        ).run()

    result = benchmark(run_once)
    assert result.stats.completed
    assert result.stats.control_messages == 0


def test_bench_domino_effect(benchmark):
    """V5: the uncoordinated baseline dominos on a chatty workload."""

    def run_once():
        protocol = UncoordinatedProtocol(period=6, stagger=0.9)
        result = Simulation(
            strip_checkpoints(pingpong()),
            4,
            params={"steps": 60},
            protocol=protocol,
            failure_plan=FailurePlan.single(21.0, 1),
        ).run()
        return protocol, result

    protocol, result = benchmark(run_once)
    print(
        f"\nuncoordinated recovery: domino steps = {protocol.domino_steps}, "
        f"rollback depths = {protocol.rollback_depths}"
    )
    assert result.stats.completed
    assert protocol.domino_steps[0] >= 1
