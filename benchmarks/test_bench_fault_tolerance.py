"""Fault-tolerance bench: availability and overhead vs storage faults.

Sweeps Poisson-drawn storage faults (write failures, torn writes, bit
rot, transient errors) over the ring-pipeline workload under the
application-driven and uncoordinated protocols. The shape claims: the
checksummed two-phase store keeps availability at 1.0 across the whole
sweep (degraded recovery absorbs every injected fault), completion
time degrades monotonically with the fault rate, and the zero-fault
column is fault-free by construction.
"""

from repro.bench.fault_tolerance import (
    DEFAULT_RATES,
    fault_tolerance_sweep,
    format_fault_table,
)


def test_bench_fault_tolerance_sweep(benchmark):
    rows = benchmark(fault_tolerance_sweep)

    print("\n=== Availability & overhead vs storage-fault rate "
          "(ring_pipeline, n=3, 4 seeds) ===")
    print(format_fault_table(rows))

    by_protocol = {}
    for row in rows:
        by_protocol.setdefault(row.protocol, []).append(row)

    assert set(by_protocol) == {"appl-driven", "uncoordinated"}
    for protocol, series in by_protocol.items():
        assert [r.rate for r in series] == list(DEFAULT_RATES)

        # Degraded recovery absorbs every injected fault: no run lost.
        assert all(r.availability == 1.0 for r in series), protocol

        # Zero-fault column is genuinely fault-free ...
        clean = series[0]
        assert clean.write_failures == clean.torn_writes == 0
        assert clean.bit_rot == clean.retries == clean.fallbacks == 0

        # ... and faults (hence overhead) grow with the rate.
        times = [r.mean_time for r in series]
        assert times == sorted(times)
        injected = [r.write_failures + r.bit_rot + r.retries for r in series]
        assert injected == sorted(injected)
        assert injected[-1] > 0

    # Crash exposure is held constant across the sweep, so the columns
    # isolate the storage-fault effect.
    crash_counts = {r.crashes for r in rows}
    assert len(crash_counts) == 1
