"""Cross-validation: the Section 4 analytic model vs the simulator.

The repo's two halves meet here: a single simulated process running
`checkpoint; compute(T)` loops under exponential failures must exhibit
an overhead ratio close to the closed-form ``r = Γ/T − 1`` with the
same λ, T, o, R (we set the model's L equal to o, matching the
simulator's single checkpoint cost). Agreement within Monte Carlo noise
validates both the Markov algebra and the engine's failure/recovery
time accounting against each other.
"""

import numpy as np

from repro.analysis.overhead import overhead_ratio
from repro.lang.parser import parse
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import RuntimeCosts, Simulation
from repro.runtime.failures import exponential_failures

WORK = 10.0          # per-interval compute cost (the model's T)
OVERHEAD = 1.0       # checkpoint overhead o
RECOVERY = 2.0       # recovery overhead R
LAMBDA = 0.004       # per-process failure rate
STEPS = 30
TRIALS = 40

PROGRAM = parse(
    "program interval_loop():\n"
    "    i = 0\n"
    "    while i < steps:\n"
    "        checkpoint\n"
    "        compute(10)\n"
    "        i = i + 1\n"
)

COSTS = RuntimeCosts(
    local_statement=0.0,
    compute_unit=1.0,
    checkpoint_overhead=OVERHEAD,
    recovery_overhead=RECOVERY,
)


def _measured_ratio() -> float:
    import copy

    ideal = STEPS * (WORK + OVERHEAD)
    totals = []
    for seed in range(TRIALS):
        plan = exponential_failures(
            1, LAMBDA, horizon=ideal * 10, seed=seed
        )
        result = Simulation(
            copy.deepcopy(PROGRAM),
            1,
            params={"steps": STEPS},
            costs=COSTS,
            protocol=ApplicationDrivenProtocol(),
            failure_plan=plan,
        ).run()
        assert result.stats.completed
        totals.append(result.completion_time)
    mean_gamma = float(np.mean(totals)) / STEPS
    return mean_gamma / WORK - 1.0


def test_bench_model_vs_simulation(benchmark):
    measured = benchmark.pedantic(_measured_ratio, rounds=1, iterations=1)
    analytic = overhead_ratio(
        failure_rate=LAMBDA,
        interval=WORK,
        total_overhead=OVERHEAD,
        recovery=RECOVERY,
        total_latency=OVERHEAD,  # the simulator has no separate latency
    )
    print(
        f"\n=== Model vs simulation (λ={LAMBDA}, T={WORK}, o={OVERHEAD}, "
        f"R={RECOVERY}) ===\n"
        f"analytic overhead ratio : {analytic:.4f}\n"
        f"simulated overhead ratio: {measured:.4f}"
    )
    # Agreement within Monte Carlo noise over TRIALS runs; the tolerance
    # also covers the simulator's discrete-event granularity. (Typical
    # observed agreement is ~2% relative.)
    assert abs(measured - analytic) < 0.25 * max(analytic, 0.01) + 0.005
