"""Ablation: per-protocol optimal checkpoint intervals.

The paper fixes T = 300 s for every protocol. This bench re-runs the
Figure 8 comparison with each protocol at *its own* optimal interval
and shows the ordering is unchanged: coordination overhead inflates
both the per-checkpoint price and the best achievable overhead ratio.
"""

from repro.analysis.parameters import ModelParameters, ProtocolKind
from repro.analysis.sensitivity import optimal_comparison, optimal_table


def test_bench_optimal_interval_ablation(benchmark):
    params = ModelParameters()
    counts = (16, 64, 256, 512)

    comparison = benchmark(optimal_comparison, params, counts)

    print("\n=== Ablation: per-protocol optimal intervals ===")
    print(optimal_table(params, counts))

    appl = comparison[ProtocolKind.APPLICATION_DRIVEN]
    sas = comparison[ProtocolKind.SYNC_AND_STOP]
    cl = comparison[ProtocolKind.CHANDY_LAMPORT]
    for a, s, c in zip(appl, sas, cl):
        assert a.ratio < s.ratio < c.ratio
    # C-L compensates by checkpointing much less often, yet still loses.
    assert cl[-1].interval > 5 * appl[-1].interval
    assert cl[-1].ratio > 10 * appl[-1].ratio
