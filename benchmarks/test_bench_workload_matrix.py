"""The full workload × protocol matrix as a bench.

Prints the comparison table for every standard workload under every
protocol with one injected crash each, and asserts the global
invariants (everything completes, coordination profiles hold).
"""

from repro.bench.workloads import (
    ProtocolRunSummary,
    run_protocol_comparison,
    standard_workloads,
    strip_checkpoints,
)
from repro.runtime import FailurePlan, Simulation

COORDINATION_FREE = {"appl-driven", "uncoordinated", "CIC-BCS", "msg-logging"}


def _run_matrix():
    rows = []
    for spec in standard_workloads(steps=10):
        bare = Simulation(
            strip_checkpoints(spec.make_program()),
            spec.n_processes,
            params=dict(spec.params),
        ).run()
        crash_time = bare.completion_time * 0.6
        rows.extend(
            run_protocol_comparison(
                spec,
                period=max(2.0, bare.completion_time / 5),
                failure_plan=FailurePlan.single(
                    crash_time, spec.n_processes - 1
                ),
            )
        )
    return rows


def test_bench_workload_matrix(benchmark):
    rows = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    print("\n=== Workload x protocol matrix (1 crash each) ===")
    print(ProtocolRunSummary.header())
    for row in rows:
        print(row.row())

    assert all(row.completed for row in rows)
    assert all(row.rollbacks == 1 for row in rows)
    for row in rows:
        if row.protocol in COORDINATION_FREE:
            assert row.control_messages == 0, (row.workload, row.protocol)
        else:
            assert row.control_messages > 0, (row.workload, row.protocol)
