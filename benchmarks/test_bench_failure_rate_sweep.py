"""Failure-probability sweep — the mechanism behind Figure 8.

The paper notes its Figure 8 ratios grow with n *because* the system
failure rate grows proportionally with n. This bench sweeps the
per-process failure probability directly at fixed n and asserts the
same structure: all three protocols degrade monotonically and the
ordering appl-driven < SaS < C-L holds at every point.
"""

from repro.analysis.comparison import (
    DEFAULT_FAILURE_PROBS,
    failure_probability_series,
)
from repro.analysis.parameters import ModelParameters, ProtocolKind
from repro.bench.figures import format_curves


def test_bench_failure_probability_sweep(benchmark):
    params = ModelParameters()
    curves = benchmark(
        failure_probability_series, params, DEFAULT_FAILURE_PROBS, 128
    )

    print("\n=== Overhead ratio vs per-process failure probability (n=128) ===")
    print(format_curves(curves, x_label="p", x_format="{:>10.1e}"))

    appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
    sas = curves[ProtocolKind.SYNC_AND_STOP].ratios
    cl = curves[ProtocolKind.CHANDY_LAMPORT].ratios
    for series in (appl, sas, cl):
        assert list(series) == sorted(series)  # monotone in p
    for a, s, c in zip(appl, sas, cl):
        assert a < s < c
