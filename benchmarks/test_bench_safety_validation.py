"""Safety-validation throughput bench (V1/V2 at scale).

Times the full static-verdict + simulation agreement check over a batch
of generated programs — the experiment that substitutes for the
deployment evidence the paper lacks.
"""

from repro.lang.generator import generate_exchange_program
from repro.phases.verification import verify_program
from repro.runtime import Simulation


def _validate_batch(seeds):
    agreements = 0
    for seed in seeds:
        for position, expected_safe in (("head", True), ("split", False)):
            program = generate_exchange_program(seed, checkpoint_position=position)
            static_ok = verify_program(program).ok
            trace = Simulation(program, 4, params={"steps": 3}).run().trace
            dynamic_ok = trace.all_straight_cuts_consistent()
            assert static_ok == expected_safe
            assert dynamic_ok == expected_safe
            agreements += 1
    return agreements


def test_bench_static_dynamic_agreement(benchmark):
    agreements = benchmark.pedantic(
        _validate_batch, args=(range(8),), rounds=2, iterations=1
    )
    print(f"\nstatic/dynamic verdicts agreed on {agreements} cases")
    assert agreements == 16


def test_bench_simulation_scaling(benchmark):
    """Simulator throughput: one jacobi run at n=16."""
    from repro.lang.programs import jacobi

    def run_once():
        return Simulation(jacobi(), 16, params={"steps": 10}).run()

    result = benchmark(run_once)
    assert result.stats.completed
    assert result.trace.all_straight_cuts_consistent()
