"""Tracing overhead bench: enabled-path cost, disabled-path freedom.

Times a full simulated run with the observability subsystem attached
(every engine/transport/storage/protocol event published, metrics
collected, flight recorder ringing) against the identical untraced run,
and prints the slowdown. The *correctness* side — byte-identical
artifacts, zero perturbation — is asserted via
:func:`repro.bench.obs_overhead.obs_overhead_report`, whose
deterministic verdicts are snapshotted in ``results/obs_overhead.txt``.
"""

import time

from repro.bench.obs_overhead import _run, obs_overhead_report
from repro.obs import Observability


def test_bench_traced_run(benchmark):
    """Time the fully-traced run and sanity-check its event volume."""

    def run_traced():
        obs = Observability()
        result = _run(observer=obs.bus)
        return obs, result

    obs, result = benchmark(run_traced)
    assert result.stats.completed
    assert obs.bus.events_emitted > 100
    assert all(
        e.clock is not None for e in obs.events if e.rank is not None
    )


def test_bench_untraced_run(benchmark):
    """Time the identical run with observability disabled."""
    result = benchmark(_run)
    assert result.stats.completed


def test_bench_overhead_report():
    """The zero-cost claims hold; print the measured relative slowdown."""
    report = obs_overhead_report()
    assert report.disabled_deterministic
    assert report.enabled_deterministic
    assert report.zero_perturbation
    assert report.jsonl_deterministic
    assert report.ok

    start = time.perf_counter()
    _run()
    untraced = time.perf_counter() - start
    obs = Observability()
    start = time.perf_counter()
    _run(observer=obs.bus)
    traced = time.perf_counter() - start
    slowdown = traced / untraced if untraced else float("inf")
    print(
        f"\ntracing overhead: untraced {untraced * 1e3:.2f} ms, "
        f"traced {traced * 1e3:.2f} ms ({slowdown:.2f}x, "
        f"{obs.bus.events_emitted} events)"
    )
