"""Figure 9 — the communication-setup (w_m) effect.

SaS and C-L degrade as the per-message setup time grows; the
application-driven protocol is exactly flat (it sends no coordination
messages). Regenerates the series, asserts the shapes, prints the
table, and times the sweep.
"""

from repro.analysis.comparison import (
    DEFAULT_FIGURE9_PROCESSES,
    DEFAULT_SETUP_TIMES,
    figure9_series,
)
from repro.analysis.parameters import ModelParameters, ProtocolKind
from repro.bench.figures import figure9_table, shape_check_figure9


def test_bench_figure9_series(benchmark):
    params = ModelParameters()
    curves = benchmark(
        figure9_series, params, DEFAULT_SETUP_TIMES, DEFAULT_FIGURE9_PROCESSES
    )
    problems = shape_check_figure9(curves)
    assert problems == [], problems

    print("\n=== Figure 9: overhead ratio vs message setup time (w_m) ===")
    print(figure9_table(params))
    appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
    sas = curves[ProtocolKind.SYNC_AND_STOP].ratios
    cl = curves[ProtocolKind.CHANDY_LAMPORT].ratios
    print(
        f"\nslopes over the sweep: appl-driven {appl[-1] - appl[0]:+.6f}, "
        f"SaS {sas[-1] - sas[0]:+.4f}, C-L {cl[-1] - cl[0]:+.4f}"
    )
    assert appl[-1] == appl[0]


def test_bench_figure9_congestion_regime(benchmark):
    """The paper's congestion remark: w_m can grow at run time; even a
    10x larger sweep keeps the qualitative ordering."""
    params = ModelParameters()
    congested = tuple(w * 10 for w in DEFAULT_SETUP_TIMES)

    curves = benchmark(figure9_series, params, congested, 64)
    assert shape_check_figure9(curves) == []
