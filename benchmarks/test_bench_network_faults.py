"""Network-fault bench: transport overhead vs drop/duplicate rates.

Sweeps Poisson-drawn frame drops and duplicates over the ring-pipeline
workload under three protocols. The shape claims: the reliable
transport keeps availability at 1.0 across the whole sweep (every run
completes despite the lossy wire), the overhead ratio ``r = Γ/T − 1``
grows monotonically with the fault rate, and the zero-rate column is
retransmission-free by construction (the RTO exceeds a round trip).
"""

from repro.bench.network_faults import (
    DEFAULT_NETWORK_RATES,
    format_network_table,
    network_fault_sweep,
)


def test_bench_network_fault_sweep(benchmark):
    rows = benchmark(network_fault_sweep)

    print("\n=== Transport overhead vs network-fault rate "
          "(ring_pipeline, n=3, 4 seeds) ===")
    print(format_network_table(rows))

    by_protocol = {}
    for row in rows:
        by_protocol.setdefault(row.protocol, []).append(row)

    assert set(by_protocol) == {"appl-driven", "uncoordinated",
                                "msg-logging"}
    for protocol, series in by_protocol.items():
        assert [r.rate for r in series] == list(DEFAULT_NETWORK_RATES)

        # The reliable transport absorbs every fault: no run lost,
        # availability 1.0 at drop rates up to 10%.
        assert all(r.availability == 1.0 for r in series), protocol

        # Zero-rate column is genuinely fault-free: no retransmission,
        # one data frame per application message.
        clean = series[0]
        assert clean.retransmits == clean.dropped == clean.duplicated == 0
        assert clean.overhead_ratio == 0.0

        # Overhead r = Γ/T − 1 grows with the fault rate ...
        overheads = [r.overhead_ratio for r in series]
        assert overheads == sorted(overheads), protocol
        assert overheads[-1] > 0

        # ... because retransmissions do (drops force retries).
        retx = [r.retransmits for r in series]
        assert retx == sorted(retx)
        assert retx[-1] > 0
