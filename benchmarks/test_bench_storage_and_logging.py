"""Storage-volume and log-based-recovery benches.

Two extensions beyond the paper's evaluation:

- **incremental checkpointing** (related work [20]): compare cumulative
  stable-storage volume under full vs delta checkpoints on the
  standard workloads;
- **message logging vs straight-cut recovery**: single-process restart
  (survivors untouched) vs the application-driven rollback of everyone
  to the latest straight cut, under the same crash.
"""

from repro.bench.workloads import standard_workloads, strip_checkpoints
from repro.lang.programs import jacobi, jacobi_plain
from repro.protocols import ApplicationDrivenProtocol, MessageLoggingProtocol
from repro.runtime import FailurePlan, Simulation


def test_bench_incremental_checkpoint_volume(benchmark):
    def measure():
        rows = []
        for spec in standard_workloads(steps=8)[:4]:
            result = Simulation(
                spec.make_program(),
                spec.n_processes,
                params=dict(spec.params),
            ).run()
            full = result.storage.total_bytes()
            incremental = result.storage.total_bytes(incremental=True)
            rows.append((spec.name, full, incremental))
        return rows

    rows = benchmark.pedantic(measure, rounds=2, iterations=1)
    print("\n=== Incremental checkpointing: stable-storage volume ===")
    print(f"{'workload':>16s} {'full [B]':>9s} {'delta [B]':>10s} {'saving':>7s}")
    for name, full, incremental in rows:
        print(f"{name:>16s} {full:>9d} {incremental:>10d} "
              f"{1 - incremental / full:>7.1%}")
    for _, full, incremental in rows:
        assert 0 < incremental <= full


def test_bench_logging_vs_straight_cut_recovery(benchmark):
    crash = FailurePlan.single(23.7, 1)

    def measure():
        appl = Simulation(
            jacobi(), 4, params={"steps": 20},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan(crashes=list(crash.crashes)),
        ).run()
        logging = Simulation(
            jacobi_plain(), 4, params={"steps": 20},
            protocol=MessageLoggingProtocol(period=8),
            failure_plan=FailurePlan(crashes=list(crash.crashes)),
        ).run()
        return appl, logging

    appl, logging = benchmark.pedantic(measure, rounds=2, iterations=1)
    print("\n=== Recovery scope: straight-cut rollback vs message logging ===")
    print(f"{'scheme':>14s} {'restart evts':>13s} {'lost work':>10s} {'ctl':>5s}")
    from repro.causality.records import EventKind

    appl_restarts = len(appl.trace.of_kind(EventKind.RESTART))
    log_restarts = len(logging.trace.of_kind(EventKind.RESTART))
    print(f"{'appl-driven':>14s} {appl_restarts:>13d} "
          f"{appl.stats.lost_work:>10.2f} {appl.stats.control_messages:>5d}")
    print(f"{'msg-logging':>14s} {log_restarts:>13d} "
          f"{logging.stats.lost_work:>10.2f} {logging.stats.control_messages:>5d}")
    # straight-cut recovery restarts everyone; logging only the victim
    assert appl_restarts == 4
    assert log_restarts == 1
    assert appl.stats.completed and logging.stats.completed
