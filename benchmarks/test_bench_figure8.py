"""Figure 8 — overhead ratio vs. number of processes.

Regenerates the paper's protocol-comparison curve (appl-driven / SaS /
C-L over n) from the closed-form model with the paper's Starfish
constants, asserts every shape claim, prints the data table, and times
the sweep.
"""

from repro.analysis.comparison import DEFAULT_PROCESS_COUNTS, figure8_series
from repro.analysis.parameters import ModelParameters, ProtocolKind
from repro.bench.figures import figure8_table, shape_check_figure8


def test_bench_figure8_series(benchmark):
    params = ModelParameters()
    curves = benchmark(figure8_series, params, DEFAULT_PROCESS_COUNTS)
    problems = shape_check_figure8(curves)
    assert problems == [], problems

    print("\n=== Figure 8: overhead ratio vs number of processes ===")
    print(figure8_table(params))
    appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
    cl = curves[ProtocolKind.CHANDY_LAMPORT].ratios
    print(
        f"\nC-L / appl-driven ratio at n={DEFAULT_PROCESS_COUNTS[-1]}: "
        f"{cl[-1] / appl[-1]:.1f}x"
    )
    # The separation the paper's figure shows: at 512 processes C-L's
    # quadratic message overhead dwarfs the coordination-free approach.
    assert cl[-1] / appl[-1] > 5.0


def test_bench_figure8_dense_sweep(benchmark):
    """A denser n-sweep (ablation: resolution does not change shapes)."""
    params = ModelParameters()
    dense = tuple(range(16, 513, 16))

    curves = benchmark(figure8_series, params, dense)
    assert shape_check_figure8(curves) == []
