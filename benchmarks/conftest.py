"""Shared benchmark configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one of the paper's evaluation artifacts (see
EXPERIMENTS.md), asserts its shape claims, and times the computation.
Tables print to stdout (visible with ``-s`` or in the captured output
of the harness logs).
"""
