"""Empirical Figure 8: overhead ratio vs system size on the simulator.

The analytic Figure 8 compares protocols at fixed workload parameters;
this bench measures the same quantity *empirically*: the ratio
``T_protocol / T_bare − 1`` of each protocol's completion time against
an unprotected run of the same workload, as the system grows.

Expected shapes (weaker than the analytic ones — the simulator has
workload-dependent noise, e.g. pauses hiding in message waits):

- the application-driven overhead stays bounded by the checkpoint cost
  (it adds no coordination), and
- the coordinated protocols' *control message count* grows with n, C-L
  super-linearly vs SaS linearly.
"""

from repro.bench.workloads import strip_checkpoints
from repro.lang.programs import jacobi
from repro.protocols import (
    ApplicationDrivenProtocol,
    ChandyLamportProtocol,
    SyncAndStopProtocol,
)
from repro.runtime import RuntimeCosts, Simulation

SIZES = (4, 8, 16)
STEPS = 10
COSTS = RuntimeCosts(control_latency=0.02)


def _measure(n: int) -> dict[str, tuple[float, int]]:
    """(overhead ratio, control messages) per protocol at size *n*."""
    bare = Simulation(
        strip_checkpoints(jacobi()), n, params={"steps": STEPS}, costs=COSTS
    ).run()
    out: dict[str, tuple[float, int]] = {}
    runs = {
        "appl-driven": (jacobi(), ApplicationDrivenProtocol()),
        "SaS": (strip_checkpoints(jacobi()), SyncAndStopProtocol(period=4.0)),
        "C-L": (strip_checkpoints(jacobi()), ChandyLamportProtocol(period=4.0)),
    }
    for name, (program, protocol) in runs.items():
        result = Simulation(
            program, n, params={"steps": STEPS}, costs=COSTS,
            protocol=protocol,
        ).run()
        ratio = result.completion_time / bare.completion_time - 1.0
        out[name] = (ratio, result.stats.control_messages)
    return out


def test_bench_empirical_overhead_vs_n(benchmark):
    rows = benchmark.pedantic(
        lambda: {n: _measure(n) for n in SIZES}, rounds=1, iterations=1
    )
    print("\n=== Empirical Figure 8 (simulator) ===")
    print(f"{'n':>4s} {'protocol':>12s} {'overhead r':>11s} {'ctl msgs':>9s}")
    for n, data in rows.items():
        for name, (ratio, ctl) in data.items():
            print(f"{n:>4d} {name:>12s} {ratio:>11.4f} {ctl:>9d}")

    for n, data in rows.items():
        assert data["appl-driven"][1] == 0  # coordination-free at every n
    # control traffic growth: C-L super-linear vs SaS linear
    sas_growth = rows[SIZES[-1]]["SaS"][1] / max(1, rows[SIZES[0]]["SaS"][1])
    cl_growth = rows[SIZES[-1]]["C-L"][1] / max(1, rows[SIZES[0]]["C-L"][1])
    assert cl_growth > sas_growth
