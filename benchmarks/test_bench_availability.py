"""Checkpointing payoff bench: protected vs unprotected completion.

The paper's motivating claim in numbers: expected completion time of a
long-running application with the application-driven protocol (linear
in the work) vs no checkpointing at all (exponential in λW), plus the
break-even work size at the paper's parameter point.
"""

from repro.analysis.availability import (
    break_even_work,
    expected_completion_with_checkpointing,
    expected_completion_without_checkpointing,
)
from repro.analysis.parameters import STARFISH_DEFAULTS, system_failure_rate

P = STARFISH_DEFAULTS
ARGS = dict(
    interval=P.interval,
    total_overhead=P.checkpoint_overhead,
    recovery=P.recovery_overhead,
    total_latency=P.checkpoint_latency,
)


def test_bench_checkpointing_payoff(benchmark):
    lam = system_failure_rate(P, 256)

    def sweep():
        rows = []
        for hours in (1, 6, 24, 96):
            work = hours * 3600.0
            protected = expected_completion_with_checkpointing(
                work, lam, **ARGS
            )
            unprotected = expected_completion_without_checkpointing(work, lam)
            rows.append((hours, work, protected, unprotected))
        return rows

    rows = benchmark(sweep)
    point = break_even_work(lam, **ARGS)
    print("\n=== Checkpointing payoff (n=256, paper constants) ===")
    print(f"{'work':>8s} {'protected [s]':>14s} {'unprotected [s]':>16s} {'ratio':>8s}")
    for hours, work, protected, unprotected in rows:
        print(f"{hours:>6d}h {protected:>14.0f} {unprotected:>16.0f} "
              f"{unprotected / protected:>8.2f}")
    print(f"break-even work: {point.work:,.0f} s "
          f"({point.work / 3600:.2f} h)")

    # the motivating shape: ratio grows with work
    ratios = [u / p for _, _, p, u in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]
