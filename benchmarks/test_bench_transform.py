"""Offline-analysis cost benches (ablations).

The paper's pitch is that ALL the work happens offline; these benches
quantify that offline cost on the shipped programs: extended-CFG
construction (Phase II), Condition 1 verification, and the full
Phase III repair — plus the conservative-vs-loop-optimised ablation
DESIGN.md calls out.
"""

from repro.lang.programs import jacobi_odd_even, master_worker, stencil_1d
from repro.phases.matching import build_extended_cfg
from repro.phases.placement import ensure_recovery_lines
from repro.phases.verification import check_condition1


def test_bench_phase2_matching(benchmark):
    ext = benchmark(build_extended_cfg, stencil_1d())
    assert len(ext.message_edges) >= 4


def test_bench_phase2_matching_many_loops(benchmark):
    ext = benchmark(build_extended_cfg, master_worker())
    assert len(ext.message_edges) >= 2


def test_bench_condition1_check(benchmark):
    ext = build_extended_cfg(jacobi_odd_even())
    result = benchmark(check_condition1, ext)
    assert not result.ok


def test_bench_phase3_repair_conservative(benchmark):
    result = benchmark(ensure_recovery_lines, jacobi_odd_even())
    assert result.verification.ok
    print(f"\nconservative repair: {len(result.moves)} moves")


def test_bench_phase3_repair_loop_optimized(benchmark):
    result = benchmark.pedantic(
        ensure_recovery_lines,
        args=(jacobi_odd_even(),),
        kwargs=dict(loop_optimization=True),
        rounds=5,
        iterations=1,
    )
    assert result.verification.ok
    print(
        f"\nloop-optimised repair: {len(result.moves)} moves, "
        f"{len(result.ordering_constraints)} ordering constraints"
    )
    # Ablation claim: the optimised mode needs strictly fewer moves
    # (it never hoists checkpoints toward the loop head).
    conservative = ensure_recovery_lines(jacobi_odd_even())
    assert len(result.moves) < len(conservative.moves)
