"""Setup shim: enables editable installs in offline environments.

The environment has no `wheel` package, so PEP 660 editable installs
fail; pip falls back to `setup.py develop` when this file exists.
All package metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
