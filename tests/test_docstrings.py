"""Documentation coverage: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in module_info.name:
            continue
        names.append(module_info.name)
    return names


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"{module_name}: undocumented public items {missing}"


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for class_name, cls in vars(module).items():
        if class_name.startswith("_") or not inspect.isclass(cls):
            continue
        if getattr(cls, "__module__", None) != module_name:
            continue
        for method_name, method in vars(cls).items():
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(method) or isinstance(method, property)):
                continue
            target = method.fget if isinstance(method, property) else method
            if target is not None and not inspect.getdoc(target):
                missing.append(f"{class_name}.{method_name}")
    assert not missing, f"{module_name}: undocumented methods {missing}"
