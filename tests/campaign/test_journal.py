"""Campaign journal: durability, torn tails, content-keyed resume."""

import json

import pytest

from repro.campaign.journal import JOURNAL_VERSION, CampaignJournal
from repro.errors import SimulationError


def _outcome(label):
    """A minimal journaled outcome payload."""
    return {"label": label, "value": len(label)}


class TestLoad:
    def test_missing_file_is_empty_journal(self, tmp_path):
        journal = CampaignJournal(tmp_path / "absent.jsonl")
        assert journal.load() == {}
        assert journal.torn_entries == 0
        assert len(journal) == 0

    def test_load_is_idempotent(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
        journal = CampaignJournal(path)
        first = journal.load()
        assert journal.load() is first

    def test_roundtrip_through_fresh_instance(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
            journal.record("b", "h2", _outcome("b"))
        fresh = CampaignJournal(path)
        fresh.load()
        assert fresh.get("a", "h1") == _outcome("a")
        assert fresh.get("b", "h2") == _outcome("b")
        assert len(fresh) == 2

    def test_header_record_is_first_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "header", "version": JOURNAL_VERSION}

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "header", "version": 999}\n')
        with pytest.raises(SimulationError, match="version 999"):
            CampaignJournal(path).load()

    def test_unknown_record_kind_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "mystery"}\nmore\n')
        with pytest.raises(SimulationError, match="corrupt"):
            CampaignJournal(path).load()

    def test_duplicate_key_keeps_newest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", {"v": 1})
            journal.record("a", "h2", {"v": 2})
        fresh = CampaignJournal(path)
        fresh.load()
        assert fresh.get("a", "h1") is None
        assert fresh.get("a", "h2") == {"v": 2}


class TestContentKeyedGet:
    def test_both_key_and_hash_must_match(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.record("a", "h1", _outcome("a"))
        assert journal.get("a", "h1") == _outcome("a")
        assert journal.get("a", "other") is None
        assert journal.get("b", "h1") is None


class TestTornTail:
    def test_torn_tail_tolerated_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "cell", "key": "b", "ha')  # SIGKILL'd write
        fresh = CampaignJournal(path)
        fresh.load()
        assert fresh.torn_entries == 1
        assert fresh.get("a", "h1") == _outcome("a")

    def test_next_append_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
        with open(path, "ab") as fh:
            fh.write(b"{torn")
        with CampaignJournal(path) as journal:
            journal.load()
            journal.record("b", "h2", _outcome("b"))
        # The torn bytes are gone and every surviving line parses.
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [r["kind"] for r in records] == ["header", "cell", "cell"]
        fresh = CampaignJournal(path)
        fresh.load()
        assert fresh.torn_entries == 0
        assert fresh.get("a", "h1") == _outcome("a")
        assert fresh.get("b", "h2") == _outcome("b")

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
            journal.record("b", "h2", _outcome("b"))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt a middle line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SimulationError, match="only the final line"):
            CampaignJournal(path).load()

    def test_trailing_newline_is_not_a_torn_entry(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
        fresh = CampaignJournal(path)
        fresh.load()
        assert fresh.torn_entries == 0


class TestAppend:
    def test_record_before_load_is_allowed(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.record("a", "h1", _outcome("a"))  # implicit load
        journal.close()
        fresh = CampaignJournal(path)
        fresh.load()
        assert fresh.get("a", "h1") == _outcome("a")

    def test_append_to_existing_preserves_old_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("a", "h1", _outcome("a"))
        with CampaignJournal(path) as journal:
            journal.load()
            journal.record("b", "h2", _outcome("b"))
        fresh = CampaignJournal(path)
        fresh.load()
        assert len(fresh) == 2

    def test_close_is_idempotent(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.record("a", "h1", _outcome("a"))
        journal.close()
        journal.close()
