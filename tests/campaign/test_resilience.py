"""Resilient executor: retries, quarantine, fault injection, resume.

The byte-identity invariant under test throughout: the deterministic
artifact is identical across ``jobs`` values AND across clean, retried,
and resumed runs — quarantine messages carry no PIDs, times, or host
state.
"""

import pytest

from repro.campaign.executor import (
    ExecutorPolicy,
    ExecutorStats,
    run_cells,
    run_campaign,
)
from repro.campaign.faults import (
    ALWAYS,
    ExecutorFaultPlan,
    InjectedWorkerError,
    WorkerFault,
    draw_executor_faults,
    parse_worker_fault,
)
from repro.campaign.journal import CampaignJournal
from repro.campaign.spec import quick_campaign
from repro.errors import ExecutorQuarantineError, SimulationError
from repro.obs import MetricsRegistry
from repro.runtime.chaos import ChaosConfig, chaos_sweep

#: A fast policy for tests: tiny backoffs, tight polling.
FAST = ExecutorPolicy(
    max_retries=2, backoff_base=0.001, backoff_max=0.01, poll_interval=0.01
)


def _double(payload):
    """Module-level so the process pool can pickle it."""
    return payload * 2


def _quarantine_dict(key, _payload, message, _error):
    """Test quarantine factory: a structured error result."""
    return {"key": key, "error": message}


def _journal_key(key):
    """Journal key for plain-int test cells."""
    return str(key)


def _cell_hash(_key, payload):
    """Content hash for plain-int test cells: the payload itself."""
    return f"payload={payload}"


def _run(items, jobs, **kwargs):
    """run_cells with the fast policy, the dict quarantine, and stats."""
    stats = ExecutorStats()
    kwargs.setdefault("policy", FAST)
    kwargs.setdefault("quarantine", _quarantine_dict)
    results, timings = run_cells(
        items, _double, jobs=jobs, stats=stats, **kwargs
    )
    return results, timings, stats


class TestPolicy:
    def test_max_attempts(self):
        assert ExecutorPolicy(max_retries=2).max_attempts == 3
        assert ExecutorPolicy(max_retries=0).max_attempts == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = ExecutorPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)


class TestFaultPlans:
    def test_draw_is_seed_deterministic(self):
        keys = [f"cell{i}" for i in range(32)]
        one = draw_executor_faults(keys, seed=7, probability=0.5)
        two = draw_executor_faults(keys, seed=7, probability=0.5)
        assert one.faults == two.faults
        other = draw_executor_faults(keys, seed=8, probability=0.5)
        assert one.faults != other.faults

    def test_draw_probability_extremes(self):
        keys = ["a", "b", "c"]
        assert len(draw_executor_faults(keys, seed=0, probability=0.0)) == 0
        assert len(draw_executor_faults(keys, seed=0, probability=1.0)) == 3

    def test_fault_validation(self):
        with pytest.raises(SimulationError, match="unknown executor fault"):
            WorkerFault(kind="melt")
        with pytest.raises(SimulationError, match=">= 1"):
            WorkerFault(kind="crash", until_attempt=0)

    def test_fires_window(self):
        fault = WorkerFault(kind="raise", until_attempt=2)
        assert fault.fires(1) and fault.fires(2)
        assert not fault.fires(3)
        assert WorkerFault(kind="raise").fires(ALWAYS)

    def test_parse_worker_fault(self):
        key, fault = parse_worker_fault("ring/appl-driven:crash")
        assert key == "ring/appl-driven"
        assert fault == WorkerFault(kind="crash")
        key, fault = parse_worker_fault("a:b:raise:2")
        assert key == "a:b"
        assert fault == WorkerFault(kind="raise", until_attempt=2)

    def test_parse_worker_fault_rejects_garbage(self):
        with pytest.raises(SimulationError, match="KEY:KIND"):
            parse_worker_fault("no-kind-here")
        with pytest.raises(SimulationError, match="non-empty"):
            parse_worker_fault(":crash")


class TestSerialResilience:
    def test_transient_raise_is_retried(self):
        plan = ExecutorFaultPlan(
            {"b": WorkerFault(kind="raise", until_attempt=1)}
        )
        results, _, stats = _run([("a", 1), ("b", 2)], 1, fault_plan=plan)
        assert results == {"a": 2, "b": 4}
        assert stats.retries == 1
        assert stats.quarantines == 0

    def test_poison_raise_is_quarantined(self):
        plan = ExecutorFaultPlan({"b": WorkerFault(kind="raise")})
        results, timings, stats = _run(
            [("a", 1), ("b", 2)], 1, fault_plan=plan
        )
        assert results["a"] == 2
        assert results["b"] == {
            "key": "b",
            "error": (
                "executor: quarantined after 3 attempt(s); last failure: "
                "InjectedWorkerError: injected executor fault: raise"
            ),
        }
        assert stats.quarantines == 1
        assert stats.retries == 2
        assert timings["b"] == 0.0

    def test_poison_crash_is_quarantined(self):
        plan = ExecutorFaultPlan({"a": WorkerFault(kind="crash")})
        results, _, stats = _run([("a", 1)], 1, fault_plan=plan)
        assert results["a"]["error"] == (
            "executor: quarantined after 3 attempt(s); "
            "last failure: worker crashed"
        )
        assert stats.quarantines == 1

    def test_hang_uses_timeout_reason(self):
        plan = ExecutorFaultPlan({"a": WorkerFault(kind="hang")})
        policy = ExecutorPolicy(
            timeout=0.5, max_retries=0, backoff_base=0.001
        )
        results, _, stats = _run(
            [("a", 1)], 1, fault_plan=plan, policy=policy
        )
        assert results["a"]["error"] == (
            "executor: quarantined after 1 attempt(s); "
            "last failure: timed out after 0.5s"
        )
        assert stats.timeouts == 1

    def test_hang_without_timeout_reads_hung(self):
        plan = ExecutorFaultPlan({"a": WorkerFault(kind="hang")})
        policy = ExecutorPolicy(max_retries=0, backoff_base=0.001)
        results, _, _ = _run([("a", 1)], 1, fault_plan=plan, policy=policy)
        assert "last failure: hung" in results["a"]["error"]

    def test_quarantine_raises_without_factory(self):
        plan = ExecutorFaultPlan({"a": WorkerFault(kind="raise")})
        with pytest.raises(ExecutorQuarantineError, match="'a'"):
            run_cells(
                [("a", 1)], _double, jobs=1,
                policy=FAST, fault_plan=plan,
            )

    def test_real_worker_exception_counts_and_quarantines(self):
        results, _, stats = _run(
            [("a", "x")], 1,
            policy=ExecutorPolicy(max_retries=1, backoff_base=0.001),
        )
        # "x" * 2 works, so force a genuine failure instead:
        assert results == {"a": "xx"}
        results, _, stats = _run(
            [("a", None)], 1,
            policy=ExecutorPolicy(max_retries=1, backoff_base=0.001),
        )
        assert "TypeError" in results["a"]["error"]
        assert stats.quarantines == 1
        assert stats.retries == 1


class TestPoolResilience:
    def test_transient_raise_matches_clean_run(self):
        items = [(n, n) for n in range(6)]
        clean, _ = run_cells(items, _double, jobs=1)
        plan = ExecutorFaultPlan(
            {3: WorkerFault(kind="raise", until_attempt=1)}
        )
        results, _, stats = _run(items, 2, fault_plan=plan)
        assert results == clean
        assert list(results) == list(clean)
        assert stats.retries == 1

    def test_poison_crash_quarantined_byte_identical_across_jobs(self):
        items = [(n, n) for n in range(4)]
        plan = ExecutorFaultPlan({2: WorkerFault(kind="crash")})
        serial, _, _ = _run(items, 1, fault_plan=plan)
        pooled, _, stats = _run(items, 2, fault_plan=plan)
        assert pooled == serial
        assert pooled[2]["error"] == (
            "executor: quarantined after 3 attempt(s); "
            "last failure: worker crashed"
        )
        assert stats.worker_restarts >= 1
        # Innocent bystanders all completed despite the pool deaths.
        assert all(pooled[n] == 2 * n for n in (0, 1, 3))

    def test_transient_crash_recovers(self):
        items = [(n, n) for n in range(4)]
        plan = ExecutorFaultPlan(
            {1: WorkerFault(kind="crash", until_attempt=1)}
        )
        results, _, stats = _run(items, 2, fault_plan=plan)
        assert results == {n: 2 * n for n in range(4)}
        assert stats.worker_restarts >= 1
        assert stats.quarantines == 0

    def test_hang_detected_by_parent_deadline(self):
        items = [(n, n) for n in range(3)]
        plan = ExecutorFaultPlan(
            {1: WorkerFault(kind="hang", hang_seconds=60.0)}
        )
        policy = ExecutorPolicy(
            timeout=0.4, max_retries=0,
            backoff_base=0.001, poll_interval=0.01,
        )
        results, _, stats = _run(
            items, 2, fault_plan=plan, policy=policy
        )
        assert results[1]["error"] == (
            "executor: quarantined after 1 attempt(s); "
            "last failure: timed out after 0.4s"
        )
        assert results[0] == 0 and results[2] == 4
        assert stats.timeouts == 1
        assert stats.worker_restarts >= 1


class TestJournalResume:
    def test_resume_serves_finished_cells(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        items = [(n, n) for n in range(5)]
        kwargs = dict(
            journal_key=_journal_key, cell_hash=_cell_hash,
            encode=lambda r: {"v": r}, decode=lambda d: d["v"],
        )
        with CampaignJournal(path) as journal:
            first, _, stats1 = _run(items, 1, journal=journal, **kwargs)
        assert stats1.resume_hits == 0
        with CampaignJournal(path) as journal:
            second, timings, stats2 = _run(items, 1, journal=journal, **kwargs)
        assert second == first
        assert stats2.resume_hits == 5
        assert all(t == 0.0 for t in timings.values())

    def test_partial_journal_runs_only_the_rest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        kwargs = dict(
            journal_key=_journal_key, cell_hash=_cell_hash,
            encode=lambda r: {"v": r}, decode=lambda d: d["v"],
        )
        with CampaignJournal(path) as journal:
            _run([(0, 0), (1, 1)], 1, journal=journal, **kwargs)
        with CampaignJournal(path) as journal:
            results, _, stats = _run(
                [(0, 0), (1, 1), (2, 2)], 1, journal=journal, **kwargs
            )
        assert results == {0: 0, 1: 2, 2: 4}
        assert stats.resume_hits == 2

    def test_hash_mismatch_forces_reexecution(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        kwargs = dict(
            journal_key=_journal_key, cell_hash=_cell_hash,
            encode=lambda r: {"v": r}, decode=lambda d: d["v"],
        )
        with CampaignJournal(path) as journal:
            _run([(0, 1)], 1, journal=journal, **kwargs)
        # Same key, different payload → different content hash.
        with CampaignJournal(path) as journal:
            results, _, stats = _run([(0, 7)], 1, journal=journal, **kwargs)
        assert results == {0: 14}
        assert stats.resume_hits == 0

    def test_torn_tail_counted_and_resume_still_correct(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        kwargs = dict(
            journal_key=_journal_key, cell_hash=_cell_hash,
            encode=lambda r: {"v": r}, decode=lambda d: d["v"],
        )
        with CampaignJournal(path) as journal:
            _run([(0, 0), (1, 1)], 1, journal=journal, **kwargs)
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "cell", "key": "2"')  # SIGKILL mid-append
        with CampaignJournal(path) as journal:
            results, _, stats = _run(
                [(0, 0), (1, 1), (2, 2)], 1, journal=journal, **kwargs
            )
        assert results == {0: 0, 1: 2, 2: 4}
        assert stats.resume_hits == 2
        assert stats.journal_torn_entries == 1

    def test_journal_requires_full_codec(self):
        journal = CampaignJournal("unused.jsonl")
        with pytest.raises(SimulationError, match="journal needs"):
            run_cells([("a", 1)], _double, jobs=1, journal=journal)


class TestCampaignResilience:
    def test_fault_plan_artifact_identical_across_jobs(self):
        specs = quick_campaign(steps=3)[:4]
        plan = ExecutorFaultPlan({
            specs[1].label: WorkerFault(kind="crash"),
            specs[2].label: WorkerFault(kind="raise", until_attempt=1),
        })
        serial = run_campaign(
            specs, jobs=1, policy=FAST, fault_plan=plan
        )
        pooled = run_campaign(
            specs, jobs=2, policy=FAST, fault_plan=plan
        )
        clean = run_campaign(specs, jobs=1)
        assert pooled.to_json() == serial.to_json()
        assert serial.cells[specs[1].label].error == (
            "executor: quarantined after 3 attempt(s); "
            "last failure: worker crashed"
        )
        # The transient cell recovered and matches its clean outcome.
        assert (
            serial.cells[specs[2].label]
            == clean.cells[specs[2].label]
        )

    def test_quarantined_cell_is_a_failure_not_an_exception(self):
        specs = quick_campaign(steps=3)[:2]
        plan = ExecutorFaultPlan({specs[0].label: WorkerFault(kind="crash")})
        result = run_campaign(specs, jobs=2, policy=FAST, fault_plan=plan)
        assert [cell.label for cell in result.failures] == [specs[0].label]
        assert result.executor.quarantines == 1

    def test_resume_artifact_identical_to_clean(self, tmp_path):
        specs = quick_campaign(steps=3)[:4]
        path = tmp_path / "journal.jsonl"
        clean = run_campaign(specs, jobs=1)
        first = run_campaign(specs, jobs=1, journal_path=path)
        resumed = run_campaign(specs, jobs=2, journal_path=path)
        assert first.to_json() == clean.to_json()
        assert resumed.to_json() == clean.to_json()
        assert resumed.executor.resume_hits == len(specs)
        assert all(t == 0.0 for t in resumed.timings.values())

    def test_registry_receives_executor_counters(self, tmp_path):
        specs = quick_campaign(steps=3)[:2]
        registry = MetricsRegistry()
        run_campaign(
            specs, jobs=1, journal_path=tmp_path / "j.jsonl",
            registry=registry,
        )
        counters = registry.as_dict()
        assert counters["executor.resume_hits"]["value"] == 0
        assert counters["executor.quarantines"]["value"] == 0
        registry2 = MetricsRegistry()
        run_campaign(
            specs, jobs=1, journal_path=tmp_path / "j.jsonl",
            registry=registry2,
        )
        assert registry2.as_dict()["executor.resume_hits"]["value"] == 2

    def test_diagnostics_dict_carries_counters(self):
        specs = quick_campaign(steps=3)[:1]
        result = run_campaign(specs, jobs=1, policy=FAST)
        diag = result.diagnostics_dict()
        assert diag["jobs"] == 1
        assert diag["executor"]["quarantines"] == 0
        assert "executor" not in result.to_json()


class TestChaosSweepResilience:
    CONFIG = ChaosConfig(n_processes=3, steps=5, horizon=30.0)

    def test_executor_fault_quarantines_one_cell(self):
        plan = ExecutorFaultPlan(
            {("appl-driven", 1): WorkerFault(kind="raise")}
        )
        stats = ExecutorStats()
        outcomes = chaos_sweep(
            range(3), protocols=("appl-driven",), config=self.CONFIG,
            jobs=1, policy=FAST, executor_fault_plan=plan,
            executor_stats=stats,
        )
        bad = outcomes[("appl-driven", 1)]
        assert not bad.ok
        assert bad.reason.startswith("executor: quarantined after")
        assert outcomes[("appl-driven", 0)].ok
        assert outcomes[("appl-driven", 2)].ok
        assert stats.quarantines == 1

    def test_journal_resume_round_trip(self, tmp_path):
        path = tmp_path / "chaos.jsonl"
        clean = chaos_sweep(
            range(3), protocols=("appl-driven",), config=self.CONFIG, jobs=1
        )
        first = chaos_sweep(
            range(3), protocols=("appl-driven",), config=self.CONFIG,
            jobs=1, journal_path=path,
        )
        stats = ExecutorStats()
        resumed = chaos_sweep(
            range(3), protocols=("appl-driven",), config=self.CONFIG,
            jobs=1, journal_path=path, executor_stats=stats,
        )
        assert first == clean
        assert resumed == clean
        assert list(resumed) == list(clean)
        assert stats.resume_hits == 3
