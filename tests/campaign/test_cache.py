"""Transform cache: keys, hit/miss semantics, and hit fidelity."""

import json

from repro.campaign.cache import CACHE_VERSION, TransformCache, transform_cache_key
from repro.lang.printer import to_source
from repro.lang.programs import load_program
from repro.obs import MetricsRegistry
from repro.phases.insertion import CostModel
from repro.phases.pipeline import transform
from repro.phases.report import transform_report


class TestKey:
    def test_key_is_stable(self):
        program = load_program("ring_pipeline")
        model = CostModel()
        from repro.attributes.contradiction import Universe

        a = transform_cache_key(program, model, False, Universe(), False)
        b = transform_cache_key(program, model, False, Universe(), False)
        assert a == b

    def test_cost_model_changes_key(self):
        program = load_program("ring_pipeline")
        from repro.attributes.contradiction import Universe

        a = transform_cache_key(
            program, CostModel(), False, Universe(), False
        )
        b = transform_cache_key(
            program, CostModel(failure_rate=0.02), False, Universe(), False
        )
        assert a != b

    def test_flags_change_key(self):
        program = load_program("ring_pipeline")
        model = CostModel()
        from repro.attributes.contradiction import Universe

        plain = transform_cache_key(program, model, False, Universe(), False)
        forced = transform_cache_key(program, model, False, Universe(), True)
        loops = transform_cache_key(program, model, True, Universe(), False)
        assert len({plain, forced, loops}) == 3

    def test_compiler_version_changes_key(self, monkeypatch):
        """A COMPILER_VERSION bump must orphan every cached transform.

        Cached programs are executed by the closure compiler, so the
        cache schema ties entries to the lowering that will run them.
        """
        import repro.campaign.cache as cache_mod
        from repro.attributes.contradiction import Universe

        program = load_program("ring_pipeline")
        model = CostModel()
        before_schema = cache_mod.cache_schema()
        before = transform_cache_key(program, model, False, Universe(), False)
        monkeypatch.setattr(
            cache_mod, "COMPILER_VERSION", cache_mod.COMPILER_VERSION + 1
        )
        assert cache_mod.cache_schema() != before_schema
        after = transform_cache_key(program, model, False, Universe(), False)
        assert after != before


class TestHitMiss:
    def test_first_miss_then_hit(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("ring_pipeline")
        first = transform(program, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
        second = transform(program, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert to_source(second.program) == to_source(first.program)

    def test_hit_report_is_byte_identical(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("jacobi_plain")
        fresh = transform(program, cache=cache)
        cached = transform(program, cache=cache)
        assert cache.hits == 1
        assert transform_report(cached) == transform_report(fresh)

    def test_different_cost_model_misses(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("ring_pipeline")
        transform(program, cache=cache)
        transform(program, CostModel(failure_rate=0.02), cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_corrupt_entry_is_a_miss_and_self_heals(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("ring_pipeline")
        transform(program, cache=cache)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{ not json")
        again = transform(program, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2
        assert cache.stores == 2
        # The overwrite healed the entry: next lookup hits.
        transform(program, cache=cache)
        assert cache.hits == 1
        assert to_source(again.program) is not None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("ring_pipeline")
        transform(program, cache=cache)
        for path in tmp_path.glob("*.json"):
            entry = json.loads(path.read_text())
            entry["version"] = CACHE_VERSION + 1
            path.write_text(json.dumps(entry))
        transform(program, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2


class TestMetrics:
    def test_counters_surface_in_registry(self, tmp_path):
        registry = MetricsRegistry()
        cache = TransformCache(tmp_path, registry=registry)
        program = load_program("ring_pipeline")
        transform(program, cache=cache)
        transform(program, cache=cache)
        assert registry.counter("transform_cache.hits").value == 1
        assert registry.counter("transform_cache.misses").value == 1
        assert registry.counter("transform_cache.stores").value == 1
        assert cache.hit_rate == 0.5

    def test_hit_rate_zero_before_lookups(self, tmp_path):
        assert TransformCache(tmp_path).hit_rate == 0.0


class TestHitFidelity:
    def test_insertion_summary_survives(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("jacobi_plain")
        fresh = transform(program, cache=cache)
        cached = transform(program, cache=cache)
        assert cached.insertion is not None
        assert cached.insertion.inserted == fresh.insertion.inserted
        assert cached.insertion.interval == fresh.insertion.interval
        assert to_source(cached.insertion.program) == to_source(
            fresh.insertion.program
        )

    def test_placement_moves_survive(self, tmp_path):
        cache = TransformCache(tmp_path)
        program = load_program("ring_pipeline")
        fresh = transform(program, cache=cache)
        cached = transform(program, cache=cache)
        assert cached.placement.moves == fresh.placement.moves
        assert (
            cached.placement.ordering_constraints
            == fresh.placement.ordering_constraints
        )
        assert (
            cached.verification.enumeration.depth
            == fresh.verification.enumeration.depth
        )

    def test_cached_program_still_simulates(self, tmp_path):
        from repro.runtime.engine import Simulation

        cache = TransformCache(tmp_path)
        program = load_program("ring_pipeline")
        fresh = transform(program, cache=cache)
        cached = transform(program, cache=cache)
        run_fresh = Simulation(
            fresh.program, 3, params={"steps": 4}, seed=1
        ).run()
        run_cached = Simulation(
            cached.program, 3, params={"steps": 4}, seed=1
        ).run()
        assert run_cached.stats.as_dict() == run_fresh.stats.as_dict()
        assert run_cached.final_env == run_fresh.final_env
