"""ScenarioSpec: serialisation, hashing, and the spec-driven factory."""

import json

import pytest

from repro.campaign.spec import (
    ScenarioSpec,
    dump_campaign,
    load_campaign,
    quick_campaign,
)
from repro.errors import SimulationError
from repro.lang.programs import load_program, program_source
from repro.protocols import make_protocol, protocol_names
from repro.runtime.engine import Simulation
from repro.runtime.failures import (
    CrashEvent,
    FaultPlan,
    NetworkFaultEvent,
    NetworkFaultKind,
)
from repro.runtime.transport import TransportConfig


def spec_with_everything() -> ScenarioSpec:
    return ScenarioSpec(
        label="full",
        program=program_source("ring_pipeline"),
        n_processes=3,
        params={"steps": 6},
        protocol="uncoordinated",
        period=6.0,
        seed=7,
        base_latency=0.4,
        storage_replicas=3,
        max_storage_retries=2,
        fault_plan=FaultPlan(
            crashes=[CrashEvent(time=9.0, rank=1)],
            max_failures=1,
            network_faults=[
                NetworkFaultEvent(
                    time=3.0, kind=NetworkFaultKind.DROP, src=0, dst=1
                ),
            ],
        ),
        transport=TransportConfig(rto_factor=4.0),
        observe=True,
        checkpoint_mode="pruned+delta",
    )


class TestSerialisation:
    def test_json_round_trip_is_identity(self):
        spec = spec_with_everything()
        again = ScenarioSpec.from_json_dict(spec.to_json_dict())
        assert again == spec

    def test_json_dict_is_json_serialisable(self):
        spec = spec_with_everything()
        assert json.loads(json.dumps(spec.to_json_dict())) \
            == spec.to_json_dict()

    def test_unknown_key_rejected(self):
        data = spec_with_everything().to_json_dict()
        data["protocl"] = "appl-driven"
        with pytest.raises(SimulationError, match="protocl"):
            ScenarioSpec.from_json_dict(data)

    def test_empty_label_rejected(self):
        with pytest.raises(SimulationError, match="label"):
            ScenarioSpec(label="", program="program p:\n  pass")

    def test_campaign_file_round_trip(self):
        specs = quick_campaign()
        again = load_campaign(dump_campaign(specs))
        assert again == specs

    def test_campaign_file_accepts_bare_list(self):
        specs = quick_campaign()[:2]
        text = json.dumps([s.to_json_dict() for s in specs])
        assert load_campaign(text) == specs

    def test_bad_campaign_file_rejected(self):
        with pytest.raises(SimulationError, match="campaign"):
            load_campaign('{"not_cells": 1}')
        with pytest.raises(SimulationError, match="campaign"):
            load_campaign("not json at all")


class TestContentHash:
    def test_label_does_not_affect_hash(self):
        a = ScenarioSpec(label="a", program=program_source("pingpong"))
        b = ScenarioSpec(label="b", program=program_source("pingpong"))
        assert a.content_hash() == b.content_hash()

    def test_every_knob_affects_hash(self):
        base = spec_with_everything()
        variants = [
            ScenarioSpec.from_json_dict(
                {**base.to_json_dict(), "seed": 8}
            ),
            ScenarioSpec.from_json_dict(
                {**base.to_json_dict(), "protocol": "appl-driven"}
            ),
            ScenarioSpec.from_json_dict(
                {**base.to_json_dict(), "fault_plan": None}
            ),
            ScenarioSpec.from_json_dict(
                {**base.to_json_dict(), "checkpoint_mode": "full"}
            ),
        ]
        hashes = {base.content_hash()} | {
            v.content_hash() for v in variants
        }
        assert len(hashes) == 5

    def test_hash_survives_round_trip(self):
        spec = spec_with_everything()
        again = ScenarioSpec.from_json_dict(spec.to_json_dict())
        assert again.content_hash() == spec.content_hash()

    def test_checkpoint_mode_defaults_to_full(self):
        # Pre-feature campaign files carry no checkpoint_mode key.
        data = spec_with_everything().to_json_dict()
        del data["checkpoint_mode"]
        assert ScenarioSpec.from_json_dict(data).checkpoint_mode == "full"


class TestSpecFactory:
    def test_from_spec_matches_direct_construction(self):
        spec = ScenarioSpec(
            label="cell",
            program=program_source("ring_pipeline"),
            n_processes=3,
            params={"steps": 5},
            protocol="uncoordinated",
            period=6.0,
            seed=3,
        )
        via_spec = Simulation.from_spec(spec).run()
        direct = Simulation(
            load_program("ring_pipeline"),
            3,
            params={"steps": 5},
            protocol=make_protocol("uncoordinated", period=6.0),
            seed=3,
        ).run()
        assert via_spec.stats.as_dict() == direct.stats.as_dict()
        assert via_spec.final_env == direct.final_env
        assert via_spec.completion_time == direct.completion_time

    def test_build_is_fresh_each_time(self):
        spec = quick_campaign()[0]
        first = spec.build().run()
        second = spec.build().run()
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_unknown_protocol_fails_at_build(self):
        spec = ScenarioSpec(
            label="x", program=program_source("pingpong"), protocol="nope"
        )
        with pytest.raises(SimulationError, match="unknown protocol"):
            spec.build()


class TestProtocolRegistry:
    def test_cli_names_match_registry(self):
        from repro.cli import _PROTOCOL_NAMES

        assert set(_PROTOCOL_NAMES) == set(protocol_names())

    def test_cli_checkpoint_modes_match_engine(self):
        # cli.py duplicates the tuple to stay import-light; this is the
        # drift pin its comment promises.
        from repro.cli import CHECKPOINT_MODES as cli_modes
        from repro.runtime.engine import CHECKPOINT_MODES as engine_modes

        assert cli_modes == engine_modes

    def test_none_returns_no_protocol(self):
        assert make_protocol("none") is None

    def test_quick_campaign_labels_unique(self):
        specs = quick_campaign()
        assert len({s.label for s in specs}) == len(specs)
