"""Campaign executor: merge determinism, parallel byte-identity, errors."""

import pytest

from repro.campaign.executor import (
    CampaignResult,
    CellOutcome,
    resolve_jobs,
    run_campaign,
    run_cells,
)
from repro.campaign.spec import ScenarioSpec, quick_campaign
from repro.errors import SimulationError
from repro.lang.programs import program_source
from repro.runtime.chaos import ChaosConfig, chaos_sweep


def _square(payload):
    """Module-level so the process pool can pickle it."""
    return payload * payload


def _explode(payload):
    """Module-level worker that always raises (picklable)."""
    raise ValueError(f"boom on {payload}")


class TestRunCells:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(SimulationError, match="unique"):
            run_cells([("a", 1), ("a", 2)], _square)

    def test_duplicate_keys_named_in_message(self):
        items = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("c", 5)]
        with pytest.raises(SimulationError) as excinfo:
            run_cells(items, _square)
        message = str(excinfo.value)
        assert "'a'" in message and "'c'" in message
        assert "'b'" not in message

    def test_worker_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom on 1"):
            run_cells([("a", 1)], _explode, jobs=1)

    def test_worker_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom on"):
            run_cells([("a", 1), ("b", 2)], _explode, jobs=2)

    def test_results_in_submission_order(self):
        items = [("c", 3), ("a", 1), ("b", 2)]
        results, timings = run_cells(items, _square)
        assert list(results) == ["c", "a", "b"]
        assert list(timings) == ["c", "a", "b"]
        assert results == {"c": 9, "a": 1, "b": 4}

    def test_parallel_matches_serial(self):
        items = [(n, n) for n in range(8)]
        serial, _ = run_cells(items, _square, jobs=1)
        parallel, _ = run_cells(items, _square, jobs=2)
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_timings_cover_every_cell(self):
        results, timings = run_cells([("x", 2), ("y", 3)], _square)
        assert set(timings) == {"x", "y"}
        assert all(t >= 0.0 for t in timings.values())

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(-2) >= 1


def small_campaign() -> list[ScenarioSpec]:
    specs = quick_campaign(steps=4)[:3]
    # One observed cell: the JSONL event log must survive the worker
    # boundary and still be byte-identical across worker counts.
    observed = ScenarioSpec.from_json_dict(
        {**specs[0].to_json_dict(), "label": "observed", "observe": True}
    )
    return [*specs, observed]


class TestRunCampaign:
    def test_serial_campaign_runs_clean(self):
        specs = small_campaign()
        result = run_campaign(specs, jobs=1)
        assert list(result.cells) == [spec.label for spec in specs]
        assert result.failures == []
        assert all(cell.ok for cell in result.cells.values())
        observed = result.cells["observed"]
        assert observed.events_jsonl
        assert result.cells[specs[0].label].events_jsonl is None

    def test_parallel_json_byte_identical_to_serial(self):
        specs = small_campaign()
        serial = run_campaign(specs, jobs=1)
        parallel = run_campaign(specs, jobs=2)
        assert parallel.to_json() == serial.to_json()
        assert list(parallel.cells) == list(serial.cells)

    def test_spec_hash_recorded(self):
        spec = quick_campaign(steps=4)[0]
        result = run_campaign([spec])
        assert result.cells[spec.label].spec_hash == spec.content_hash()

    def test_failing_cell_is_reported_not_raised(self):
        bad = ScenarioSpec(
            label="boom",
            program=program_source("ring_pipeline"),
            n_processes=3,
            params={"steps": 6},
            max_steps=5,
        )
        good = quick_campaign(steps=4)[0]
        result = run_campaign([good, bad])
        assert result.cells["boom"].error is not None
        assert "SimulationError" in result.cells["boom"].error
        assert not result.cells["boom"].ok
        assert result.failures == [result.cells["boom"]]
        assert result.cells[good.label].ok
        # The artifact still serialises with the failure embedded.
        assert '"error": "SimulationError' in result.to_json()

    def test_timings_excluded_from_artifact(self):
        spec = quick_campaign(steps=4)[0]
        result = run_campaign([spec])
        artifact = result.to_json()
        assert result.timings  # collected...
        assert "timings" not in artifact  # ...but never serialised

    def test_cell_outcome_roundtrips_to_json(self):
        outcome = CellOutcome(
            label="x",
            spec_hash="deadbeef",
            stats={"completed": True},
            final_env={1: {"v": 2}, 0: {"v": 1}},
            completion_time=3.5,
        )
        data = outcome.to_json_dict()
        assert list(data["final_env"]) == ["0", "1"]
        assert data["completion_time"] == 3.5

    def test_empty_campaign(self):
        result = run_campaign([])
        assert result.cells == {}
        assert result.to_json() == CampaignResult().to_json()

    def test_unexpected_exception_captured_in_outcome(self, monkeypatch):
        spec = quick_campaign(steps=4)[0]
        monkeypatch.setattr(
            ScenarioSpec,
            "build",
            lambda self, observer=None: (_ for _ in ()).throw(
                RecursionError("maximum recursion depth exceeded")
            ),
        )
        result = run_campaign([spec], jobs=1)
        outcome = result.cells[spec.label]
        assert outcome.error == (
            "unexpected: RecursionError: maximum recursion depth exceeded"
        )
        assert not outcome.ok
        # The artifact serialises the captured failure like any other.
        assert '"error": "unexpected: RecursionError' in result.to_json()

    def test_cell_outcome_json_roundtrip_exact(self):
        outcome = CellOutcome(
            label="x",
            spec_hash="deadbeef",
            stats={"completed": True},
            final_env={1: {"v": 2}, 0: {"v": 1}},
            completion_time=3.5,
        )
        rebuilt = CellOutcome.from_json_dict(outcome.to_json_dict())
        assert rebuilt == outcome
        assert rebuilt.to_json_dict() == outcome.to_json_dict()


class TestChaosSweepJobs:
    def test_parallel_sweep_identical_to_serial(self):
        config = ChaosConfig(n_processes=3, steps=6, horizon=30.0)
        serial = chaos_sweep(
            range(4), protocols=("appl-driven",), config=config, jobs=1
        )
        parallel = chaos_sweep(
            range(4), protocols=("appl-driven",), config=config, jobs=2
        )
        assert parallel == serial
        assert list(parallel) == list(serial)
