"""Comparison-sweep (Figures 8/9) and optimal-interval tests."""

import pytest

from repro.analysis.comparison import (
    ProtocolCurve,
    figure8_series,
    figure9_series,
    overhead_ratio_for_protocol,
)
from repro.analysis.optimal_interval import (
    daly_interval,
    optimal_interval_exact,
    young_interval,
)
from repro.analysis.parameters import ModelParameters, ProtocolKind
from repro.bench.figures import shape_check_figure8, shape_check_figure9
from repro.errors import AnalysisError


class TestFigure8:
    def test_all_protocols_present(self):
        curves = figure8_series()
        assert set(curves) == set(ProtocolKind)

    def test_shape_claims_hold(self):
        assert shape_check_figure8(figure8_series()) == []

    def test_appl_driven_strictly_cheapest(self):
        curves = figure8_series()
        appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
        for kind in (ProtocolKind.SYNC_AND_STOP, ProtocolKind.CHANDY_LAMPORT):
            other = curves[kind].ratios
            assert all(a < o for a, o in zip(appl, other))

    def test_custom_process_counts(self):
        curves = figure8_series(process_counts=(8, 16))
        assert curves[ProtocolKind.SYNC_AND_STOP].x_values == (8.0, 16.0)

    def test_rows_accessor(self):
        curve = figure8_series()[ProtocolKind.APPLICATION_DRIVEN]
        rows = curve.as_rows()
        assert len(rows) == len(curve.x_values)
        assert rows[0][1] == curve.ratios[0]


class TestFigure9:
    def test_shape_claims_hold(self):
        assert shape_check_figure9(figure9_series()) == []

    def test_appl_driven_flat(self):
        curve = figure9_series()[ProtocolKind.APPLICATION_DRIVEN]
        assert max(curve.ratios) == pytest.approx(min(curve.ratios))

    def test_zero_setup_near_parity(self):
        """At w_m = 0 (and tiny w_b) coordination is nearly free; the
        protocols should then be within a small factor of each other."""
        params = ModelParameters(per_bit_delay=1e-9)
        curves = figure9_series(params, setup_times=(0.0,), n_processes=64)
        ratios = [c.ratios[0] for c in curves.values()]
        assert max(ratios) / min(ratios) < 1.05

    def test_shape_detects_broken_series(self):
        curves = figure9_series()
        broken = dict(curves)
        flat = curves[ProtocolKind.APPLICATION_DRIVEN]
        broken[ProtocolKind.CHANDY_LAMPORT] = ProtocolCurve(
            kind=ProtocolKind.CHANDY_LAMPORT,
            x_values=flat.x_values,
            ratios=flat.ratios,
        )
        assert shape_check_figure9(broken)


class TestPerProtocolRatio:
    def test_matches_series_entries(self):
        params = ModelParameters()
        curves = figure8_series(params, process_counts=(32,))
        for kind in ProtocolKind:
            direct = overhead_ratio_for_protocol(params, kind, 32)
            assert curves[kind].ratios[0] == pytest.approx(direct)

    def test_grows_with_extra_coordination(self):
        base = overhead_ratio_for_protocol(
            ModelParameters(), ProtocolKind.APPLICATION_DRIVEN, 64
        )
        loaded = overhead_ratio_for_protocol(
            ModelParameters(extra_coordination=5.0),
            ProtocolKind.APPLICATION_DRIVEN,
            64,
        )
        assert loaded > base


class TestOptimalIntervals:
    def test_young_formula(self):
        assert young_interval(2.0, 0.01) == pytest.approx(20.0)

    def test_daly_close_to_young_for_small_overhead(self):
        young = young_interval(0.1, 1e-4)
        daly = daly_interval(0.1, 1e-4)
        assert daly == pytest.approx(young, rel=0.05)

    def test_daly_fallback_for_huge_overhead(self):
        assert daly_interval(1000.0, 0.01) == pytest.approx(100.0)

    def test_exact_optimum_beats_neighbours(self):
        lam, overhead, recovery, latency = 1e-4, 1.78, 3.32, 4.292
        best = optimal_interval_exact(lam, overhead, recovery, latency)

        from repro.analysis.overhead import overhead_ratio

        def ratio(T):
            return overhead_ratio(lam, T, overhead, recovery, latency)

        assert ratio(best) <= ratio(best * 0.8)
        assert ratio(best) <= ratio(best * 1.25)

    def test_exact_near_young_for_small_rate(self):
        lam, overhead = 1e-6, 1.78
        best = optimal_interval_exact(lam, overhead, 3.32, 4.292)
        assert best == pytest.approx(young_interval(overhead, lam), rel=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            young_interval(-1.0, 0.1)
        with pytest.raises(AnalysisError):
            young_interval(1.0, 0.0)
        with pytest.raises(AnalysisError):
            daly_interval(1.0, -0.5)
        with pytest.raises(AnalysisError):
            optimal_interval_exact(1e-4, -1.0, 0.0, 0.0)
