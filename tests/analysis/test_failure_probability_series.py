"""Failure-probability sweep unit tests."""

import pytest

from repro.analysis.comparison import (
    failure_probability_series,
    overhead_ratio_for_protocol,
)
from repro.analysis.parameters import ModelParameters, ProtocolKind


class TestFailureProbabilitySeries:
    def test_all_protocols_present(self):
        curves = failure_probability_series()
        assert set(curves) == set(ProtocolKind)

    def test_monotone_in_probability(self):
        curves = failure_probability_series()
        for curve in curves.values():
            assert list(curve.ratios) == sorted(curve.ratios)

    def test_ordering_preserved(self):
        curves = failure_probability_series()
        appl = curves[ProtocolKind.APPLICATION_DRIVEN].ratios
        sas = curves[ProtocolKind.SYNC_AND_STOP].ratios
        cl = curves[ProtocolKind.CHANDY_LAMPORT].ratios
        for a, s, c in zip(appl, sas, cl):
            assert a < s < c

    def test_matches_direct_computation(self):
        params = ModelParameters()
        curves = failure_probability_series(
            params, probabilities=(1e-5,), n_processes=64
        )
        direct = overhead_ratio_for_protocol(
            params.with_(process_failure_prob=1e-5),
            ProtocolKind.SYNC_AND_STOP,
            64,
        )
        assert curves[ProtocolKind.SYNC_AND_STOP].ratios[0] == pytest.approx(
            direct
        )

    def test_x_values_are_probabilities(self):
        probs = (1e-6, 1e-5)
        curves = failure_probability_series(probabilities=probs)
        for curve in curves.values():
            assert curve.x_values == probs
