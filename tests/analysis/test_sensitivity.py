"""Sensitivity analysis and optimal-interval ablation tests."""

import pytest

from repro.analysis.overhead import overhead_ratio
from repro.analysis.parameters import (
    ModelParameters,
    ProtocolKind,
    system_failure_rate,
)
from repro.analysis.message_overhead import (
    total_checkpoint_overhead,
    total_latency_overhead,
)
from repro.analysis.sensitivity import (
    optimal_comparison,
    optimal_interval_for_protocol,
    optimal_table,
    sensitivity_sweep,
)
from repro.errors import AnalysisError

PARAMS = ModelParameters()


class TestOptimalPerProtocol:
    def test_optimum_beats_neighbouring_intervals(self):
        point = optimal_interval_for_protocol(
            PARAMS, ProtocolKind.SYNC_AND_STOP, 256
        )
        lam = system_failure_rate(PARAMS, 256)
        total_o = total_checkpoint_overhead(PARAMS, ProtocolKind.SYNC_AND_STOP, 256)
        total_l = total_latency_overhead(PARAMS, ProtocolKind.SYNC_AND_STOP, 256)

        def at(interval):
            return overhead_ratio(
                lam, interval, total_o, PARAMS.recovery_overhead, total_l
            )

        assert point.ratio <= at(point.interval * 0.7)
        assert point.ratio <= at(point.interval * 1.4)

    def test_expensive_protocols_checkpoint_less_often(self):
        """Higher per-checkpoint cost pushes the optimal interval up."""
        appl = optimal_interval_for_protocol(
            PARAMS, ProtocolKind.APPLICATION_DRIVEN, 256
        )
        cl = optimal_interval_for_protocol(
            PARAMS, ProtocolKind.CHANDY_LAMPORT, 256
        )
        assert cl.interval > appl.interval

    def test_appl_driven_still_wins_at_optimum(self):
        """The ablation's headline: optimal-T does not save the
        coordinated protocols."""
        comparison = optimal_comparison(PARAMS, process_counts=(64, 256, 512))
        appl = comparison[ProtocolKind.APPLICATION_DRIVEN]
        for kind in (ProtocolKind.SYNC_AND_STOP, ProtocolKind.CHANDY_LAMPORT):
            other = comparison[kind]
            for a, o in zip(appl, other):
                assert a.ratio < o.ratio

    def test_optimal_interval_shrinks_with_system_size(self):
        """More processes → higher λ → checkpoint more often."""
        small = optimal_interval_for_protocol(
            PARAMS, ProtocolKind.APPLICATION_DRIVEN, 16
        )
        large = optimal_interval_for_protocol(
            PARAMS, ProtocolKind.APPLICATION_DRIVEN, 512
        )
        assert large.interval < small.interval

    def test_table_renders(self):
        table = optimal_table(PARAMS, process_counts=(16, 64))
        assert "appl-driven" in table
        assert len(table.splitlines()) == 4

    def test_no_overflow_at_extreme_rates(self):
        # regression: large λ once overflowed the golden-section search
        point = optimal_interval_for_protocol(
            PARAMS.with_(process_failure_prob=1e-3),
            ProtocolKind.CHANDY_LAMPORT,
            512,
        )
        assert point.interval > 0


class TestSensitivitySweep:
    def test_ratio_monotone_in_failure_prob(self):
        ratios = sensitivity_sweep(
            PARAMS,
            "process_failure_prob",
            (1e-7, 1e-6, 1e-5, 1e-4),
            ProtocolKind.APPLICATION_DRIVEN,
            128,
        )
        assert list(ratios) == sorted(ratios)

    def test_ratio_monotone_in_checkpoint_overhead(self):
        ratios = sensitivity_sweep(
            PARAMS,
            "checkpoint_overhead",
            (0.5, 2.0, 8.0),
            ProtocolKind.SYNC_AND_STOP,
            128,
        )
        assert list(ratios) == sorted(ratios)

    def test_appl_driven_insensitive_to_message_setup(self):
        ratios = sensitivity_sweep(
            PARAMS,
            "message_setup",
            (0.0, 0.01, 0.1),
            ProtocolKind.APPLICATION_DRIVEN,
            128,
        )
        assert max(ratios) == pytest.approx(min(ratios))

    def test_unknown_field_rejected(self):
        with pytest.raises(AnalysisError, match="cannot sweep"):
            sensitivity_sweep(
                PARAMS, "marker_bits", (8,), ProtocolKind.SYNC_AND_STOP, 4
            )
