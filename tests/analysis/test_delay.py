"""RTT/delay estimator tests."""

import pytest

from repro.analysis.delay import RttEstimator, estimate_message_delay
from repro.errors import AnalysisError
from repro.lang.programs import jacobi_plain
from repro.runtime import Simulation


class TestRttEstimator:
    def test_first_sample_initialises(self):
        estimator = RttEstimator()
        estimator.observe(10.0)
        assert estimator.estimate == 10.0
        assert estimator.rttvar == 5.0
        assert estimator.samples == 1

    def test_converges_to_constant_stream(self):
        estimator = RttEstimator()
        for _ in range(200):
            estimator.observe(3.0)
        assert estimator.estimate == pytest.approx(3.0)
        assert estimator.rttvar == pytest.approx(0.0, abs=1e-6)

    def test_tracks_shift(self):
        estimator = RttEstimator()
        for _ in range(50):
            estimator.observe(1.0)
        for _ in range(200):
            estimator.observe(5.0)
        assert estimator.estimate == pytest.approx(5.0, rel=0.01)

    def test_timeout_exceeds_estimate_under_jitter(self):
        estimator = RttEstimator()
        for sample in (1.0, 3.0) * 50:
            estimator.observe(sample)
        assert estimator.timeout > estimator.estimate

    def test_empty_estimator(self):
        estimator = RttEstimator()
        assert estimator.estimate == 0.0
        assert estimator.timeout == 0.0

    def test_negative_sample_rejected(self):
        with pytest.raises(AnalysisError):
            RttEstimator().observe(-1.0)

    def test_invalid_gains_rejected(self):
        with pytest.raises(AnalysisError):
            RttEstimator(alpha=0.0)
        with pytest.raises(AnalysisError):
            RttEstimator(beta=1.5)


class TestTraceEstimation:
    def test_estimates_from_simulated_trace(self):
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 5}, base_latency=0.7
        ).run()
        estimator = estimate_message_delay(result.trace.events)
        assert estimator.samples == result.trace.message_count()
        # one-way delay >= base latency (plus queueing/waiting)
        assert estimator.estimate >= 0.7

    def test_latency_sensitivity(self):
        slow = Simulation(
            jacobi_plain(), 4, params={"steps": 5}, base_latency=2.0
        ).run()
        fast = Simulation(
            jacobi_plain(), 4, params={"steps": 5}, base_latency=0.1
        ).run()
        slow_est = estimate_message_delay(slow.trace.events)
        fast_est = estimate_message_delay(fast.trace.events)
        assert slow_est.estimate > fast_est.estimate

    def test_empty_trace(self):
        estimator = estimate_message_delay([])
        assert estimator.samples == 0
