"""Markov-chain / closed-form / Monte Carlo agreement tests (V3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.markov import IntervalMarkovChain, expected_interval_time
from repro.analysis.montecarlo import simulate_interval_time
from repro.analysis.overhead import (
    failure_free_ratio,
    gamma_closed_form,
    overhead_ratio,
)
from repro.errors import AnalysisError

PAPER = dict(
    interval=300.0, total_overhead=1.78, recovery=3.32, total_latency=4.292
)


def chain(lam, **overrides):
    params = {**PAPER, **overrides}
    return IntervalMarkovChain(failure_rate=lam, **params)


class TestTransitionStructure:
    def test_probabilities_sum_to_one(self):
        c = chain(1e-3)
        assert c.p_success_first() + c.p_fail_first() == pytest.approx(1.0)
        assert c.p_success_retry() + c.p_fail_retry() == pytest.approx(1.0)

    def test_conditional_ttf_below_span(self):
        c = chain(1e-3)
        for span in (c.first_attempt_span, c.retry_span):
            ttf = c.mean_time_to_failure_within(span)
            assert 0 < ttf < span

    def test_conditional_ttf_tends_to_half_span_for_small_rate(self):
        c = chain(1e-9)
        span = c.first_attempt_span
        assert c.mean_time_to_failure_within(span) == pytest.approx(
            span / 2, rel=1e-3
        )

    def test_invalid_parameters(self):
        with pytest.raises(AnalysisError):
            chain(0.0)
        with pytest.raises(AnalysisError):
            chain(-1.0)
        with pytest.raises(AnalysisError):
            IntervalMarkovChain(1e-3, -5.0, 1.0, 1.0, 1.0)


class TestGammaAgreement:
    @settings(max_examples=50, deadline=None)
    @given(
        lam=st.floats(min_value=1e-7, max_value=1e-2),
        interval=st.floats(min_value=10.0, max_value=2000.0),
        overhead=st.floats(min_value=0.0, max_value=50.0),
        recovery=st.floats(min_value=0.0, max_value=50.0),
        latency=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_two_path_equals_linear_system_equals_closed_form(
        self, lam, interval, overhead, recovery, latency
    ):
        c = IntervalMarkovChain(lam, interval, overhead, recovery, latency)
        two_path = c.expected_time_two_path()
        linear = c.expected_time_linear_system()
        closed = gamma_closed_form(lam, interval, overhead, recovery, latency)
        # 1e-7 relative: the two-path expansion suffers mild
        # cancellation at extreme lambda*T, which is floating-point
        # noise, not algebra error.
        assert two_path == pytest.approx(linear, rel=1e-7)
        assert two_path == pytest.approx(closed, rel=1e-7)

    def test_paper_parameter_point(self):
        lam = 256 * 1.23e-6
        gamma = gamma_closed_form(lam, **PAPER)
        assert gamma == pytest.approx(expected_interval_time(lam, **PAPER))
        assert gamma > PAPER["interval"] + PAPER["total_overhead"]

    def test_gamma_tends_to_span_without_failures(self):
        gamma = gamma_closed_form(1e-12, **PAPER)
        assert gamma == pytest.approx(
            PAPER["interval"] + PAPER["total_overhead"], rel=1e-6
        )

    def test_gamma_increases_with_rate(self):
        gammas = [
            gamma_closed_form(lam, **PAPER) for lam in (1e-6, 1e-4, 1e-2)
        ]
        assert gammas == sorted(gammas)

    def test_monte_carlo_agrees(self):
        lam = 2e-3  # high enough that failures matter
        estimate = simulate_interval_time(lam, **PAPER, trials=40_000, seed=1)
        closed = gamma_closed_form(lam, **PAPER)
        assert estimate.within(closed, sigmas=4.0)
        assert estimate.mean_failures > 0

    def test_monte_carlo_failure_free_limit(self):
        estimate = simulate_interval_time(1e-9, **PAPER, trials=2_000)
        assert estimate.mean == pytest.approx(
            PAPER["interval"] + PAPER["total_overhead"], rel=1e-4
        )


class TestOverheadRatio:
    def test_ratio_matches_gamma(self):
        lam = 1e-4
        gamma = gamma_closed_form(lam, **PAPER)
        ratio = overhead_ratio(lam, **PAPER)
        assert ratio == pytest.approx(gamma / PAPER["interval"] - 1.0)

    def test_failure_free_anchor(self):
        assert failure_free_ratio(300.0, 3.0) == pytest.approx(0.01)
        ratio = overhead_ratio(1e-12, **PAPER)
        assert ratio == pytest.approx(
            failure_free_ratio(PAPER["interval"], PAPER["total_overhead"]),
            abs=1e-6,
        )

    def test_ratio_positive(self):
        assert overhead_ratio(1e-5, **PAPER) > 0

    def test_ratio_monotone_in_overhead(self):
        low = overhead_ratio(1e-4, 300.0, 1.0, 3.32, 4.292)
        high = overhead_ratio(1e-4, 300.0, 10.0, 3.32, 4.292)
        assert high > low

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            overhead_ratio(0.0, **PAPER)
        with pytest.raises(AnalysisError):
            gamma_closed_form(1e-4, -1.0, 1.0, 1.0, 1.0)
        with pytest.raises(AnalysisError):
            failure_free_ratio(0.0, 1.0)
