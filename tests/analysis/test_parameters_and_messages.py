"""Parameter-set and message-overhead model tests."""

import math

import pytest

from repro.analysis.message_overhead import (
    coordination_message_count,
    message_overhead,
    total_checkpoint_overhead,
    total_latency_overhead,
)
from repro.analysis.parameters import (
    ModelParameters,
    ProtocolKind,
    STARFISH_DEFAULTS,
    system_failure_rate,
)
from repro.errors import AnalysisError


class TestModelParameters:
    def test_paper_defaults(self):
        p = STARFISH_DEFAULTS
        assert p.checkpoint_overhead == 1.78
        assert p.checkpoint_latency == 4.292
        assert p.recovery_overhead == 3.32
        assert p.process_failure_prob == 1.23e-6
        assert p.interval == 300.0

    def test_with_replaces_fields(self):
        p = STARFISH_DEFAULTS.with_(interval=100.0)
        assert p.interval == 100.0
        assert p.checkpoint_overhead == STARFISH_DEFAULTS.checkpoint_overhead

    def test_message_unit_cost(self):
        p = ModelParameters(message_setup=0.01, per_bit_delay=0.001, marker_bits=8)
        assert p.message_unit_cost() == pytest.approx(0.018)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("process_failure_prob", 0.0),
            ("process_failure_prob", 1.0),
            ("interval", -1.0),
            ("checkpoint_overhead", 0.0),
            ("message_setup", -0.1),
        ],
    )
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(AnalysisError):
            ModelParameters(**{field: value})


class TestSystemFailureRate:
    def test_scales_linearly_for_small_p(self):
        one = system_failure_rate(STARFISH_DEFAULTS, 1)
        many = system_failure_rate(STARFISH_DEFAULTS, 100)
        assert many == pytest.approx(100 * one, rel=1e-3)

    def test_matches_survival_probability(self):
        p = STARFISH_DEFAULTS
        n = 64
        rate = system_failure_rate(p, n)
        assert math.exp(-rate) == pytest.approx(
            (1 - p.process_failure_prob) ** n
        )

    def test_requires_positive_n(self):
        with pytest.raises(AnalysisError):
            system_failure_rate(STARFISH_DEFAULTS, 0)


class TestMessageOverheads:
    def test_application_driven_is_free(self):
        assert coordination_message_count(ProtocolKind.APPLICATION_DRIVEN, 128) == 0
        assert message_overhead(STARFISH_DEFAULTS, ProtocolKind.APPLICATION_DRIVEN, 128) == 0.0

    def test_sas_formula(self):
        # M(SaS) = 5 (n-1) (w_m + 8 w_b)
        assert coordination_message_count(ProtocolKind.SYNC_AND_STOP, 11) == 50
        p = ModelParameters(message_setup=0.01, per_bit_delay=0.0)
        assert message_overhead(p, ProtocolKind.SYNC_AND_STOP, 11) == pytest.approx(0.5)

    def test_cl_formula(self):
        # M(C-L) = 2 n (n-1) (w_m + 8 w_b)
        assert coordination_message_count(ProtocolKind.CHANDY_LAMPORT, 10) == 180
        p = ModelParameters(message_setup=0.001, per_bit_delay=0.0)
        assert message_overhead(p, ProtocolKind.CHANDY_LAMPORT, 10) == pytest.approx(0.18)

    def test_cl_quadratic_vs_sas_linear(self):
        small_sas = coordination_message_count(ProtocolKind.SYNC_AND_STOP, 10)
        big_sas = coordination_message_count(ProtocolKind.SYNC_AND_STOP, 100)
        small_cl = coordination_message_count(ProtocolKind.CHANDY_LAMPORT, 10)
        big_cl = coordination_message_count(ProtocolKind.CHANDY_LAMPORT, 100)
        assert big_sas / small_sas == pytest.approx(11.0)  # linear-ish
        assert big_cl / small_cl == pytest.approx(110.0)   # quadratic-ish

    def test_totals_add_base_overheads(self):
        p = STARFISH_DEFAULTS
        o_total = total_checkpoint_overhead(p, ProtocolKind.SYNC_AND_STOP, 16)
        l_total = total_latency_overhead(p, ProtocolKind.SYNC_AND_STOP, 16)
        m = message_overhead(p, ProtocolKind.SYNC_AND_STOP, 16)
        assert o_total == pytest.approx(p.checkpoint_overhead + m)
        assert l_total == pytest.approx(p.checkpoint_latency + m)

    def test_extra_coordination_included(self):
        p = STARFISH_DEFAULTS.with_(extra_coordination=2.5)
        o_total = total_checkpoint_overhead(p, ProtocolKind.APPLICATION_DRIVEN, 4)
        assert o_total == pytest.approx(p.checkpoint_overhead + 2.5)

    def test_single_process_no_coordination(self):
        for kind in ProtocolKind:
            assert coordination_message_count(kind, 1) == 0

    def test_invalid_process_count(self):
        with pytest.raises(AnalysisError):
            coordination_message_count(ProtocolKind.SYNC_AND_STOP, 0)
