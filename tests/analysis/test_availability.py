"""Application completion-time analysis tests."""

import math

import pytest

from repro.analysis.availability import (
    break_even_work,
    expected_completion_with_checkpointing,
    expected_completion_without_checkpointing,
    simulate_unprotected_completion,
)
from repro.errors import AnalysisError

PAPER = dict(
    interval=300.0, total_overhead=1.78, recovery=3.32, total_latency=4.292
)


class TestClosedForms:
    def test_unprotected_failure_free_limit(self):
        # λW << 1: expected time ≈ W
        value = expected_completion_without_checkpointing(100.0, 1e-9)
        assert value == pytest.approx(100.0, rel=1e-6)

    def test_unprotected_matches_monte_carlo(self):
        lam, work = 1e-3, 2000.0
        closed = expected_completion_without_checkpointing(work, lam)
        estimate = simulate_unprotected_completion(
            work, lam, trials=40_000, seed=3
        )
        assert estimate == pytest.approx(closed, rel=0.05)

    def test_unprotected_restart_overhead_counted(self):
        lam, work = 1e-3, 2000.0
        without = expected_completion_without_checkpointing(work, lam)
        with_overhead = expected_completion_without_checkpointing(
            work, lam, restart_overhead=50.0
        )
        assert with_overhead > without
        estimate = simulate_unprotected_completion(
            work, lam, restart_overhead=50.0, trials=40_000, seed=4
        )
        assert estimate == pytest.approx(with_overhead, rel=0.05)

    def test_checkpointed_completion_scales_with_work(self):
        lam = 1e-4
        small = expected_completion_with_checkpointing(3_000, lam, **PAPER)
        large = expected_completion_with_checkpointing(30_000, lam, **PAPER)
        assert large == pytest.approx(10 * small)

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            expected_completion_with_checkpointing(0, 1e-4, **PAPER)
        with pytest.raises(AnalysisError):
            expected_completion_without_checkpointing(-5, 1e-4)
        with pytest.raises(AnalysisError):
            expected_completion_without_checkpointing(5, 0.0)


class TestBreakEven:
    def test_crossover_exists_at_paper_parameters(self):
        lam = 256 * 1.23e-6
        point = break_even_work(lam, **PAPER)
        assert point is not None
        assert point.with_checkpointing == pytest.approx(
            point.without_checkpointing, rel=1e-3
        )

    def test_checkpointing_wins_beyond_crossover(self):
        lam = 256 * 1.23e-6
        point = break_even_work(lam, **PAPER)
        work = point.work * 10
        protected = expected_completion_with_checkpointing(work, lam, **PAPER)
        unprotected = expected_completion_without_checkpointing(work, lam)
        assert protected < unprotected

    def test_unprotected_wins_below_crossover(self):
        lam = 256 * 1.23e-6
        point = break_even_work(lam, **PAPER)
        work = point.work / 10
        protected = expected_completion_with_checkpointing(work, lam, **PAPER)
        unprotected = expected_completion_without_checkpointing(work, lam)
        assert unprotected < protected

    def test_higher_failure_rate_lowers_crossover(self):
        low = break_even_work(1e-5, **PAPER)
        high = break_even_work(1e-3, **PAPER)
        assert high.work < low.work

    def test_exponential_blowup_without_checkpointing(self):
        """The motivating observation: unprotected completion time
        explodes exponentially in λW, while the checkpointed time stays
        linear in W."""
        lam = 1e-3
        work = 20_000.0  # λW = 20
        unprotected = expected_completion_without_checkpointing(work, lam)
        protected = expected_completion_with_checkpointing(
            work, lam, interval=100.0, total_overhead=1.78,
            recovery=3.32, total_latency=4.292,
        )
        assert unprotected > 1e6 * protected
        assert math.isfinite(unprotected)
