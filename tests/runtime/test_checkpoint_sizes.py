"""Checkpoint size accounting (full vs incremental model)."""

import pytest

from repro.lang.parser import parse
from repro.lang.programs import jacobi
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.interpreter import ProcessSnapshot
from repro.runtime.storage import FRAME_BYTES, WORD_BYTES, snapshot_sizes


def snapshot(env, frames=1):
    return ProcessSnapshot(
        env=dict(env),
        frames=tuple(object() for _ in range(frames)),
        checkpoint_count=0,
        input_counters={},
    )


class TestSizeModel:
    def test_full_size_counts_all_variables(self):
        snap = snapshot({"a": 1, "b": 2, "c": 3}, frames=2)
        full, delta = snapshot_sizes(snap, previous_env=None)
        assert full == 3 * WORD_BYTES + 2 * FRAME_BYTES
        assert delta == full  # first checkpoint is always full

    def test_delta_counts_only_changes(self):
        snap = snapshot({"a": 1, "b": 99, "c": 3}, frames=1)
        full, delta = snapshot_sizes(snap, previous_env={"a": 1, "b": 2, "c": 3})
        assert delta == 1 * WORD_BYTES + FRAME_BYTES
        assert delta < full

    def test_new_variables_count_as_changes(self):
        snap = snapshot({"a": 1, "new": 7})
        _, delta = snapshot_sizes(snap, previous_env={"a": 1})
        assert delta == 1 * WORD_BYTES + FRAME_BYTES

    def test_unchanged_env_delta_is_frames_only(self):
        snap = snapshot({"a": 1}, frames=3)
        _, delta = snapshot_sizes(snap, previous_env={"a": 1})
        assert delta == 3 * FRAME_BYTES


class TestSimulationAccounting:
    def test_totals_accumulate(self):
        result = Simulation(jacobi(), 4, params={"steps": 6}).run()
        full = result.storage.total_bytes()
        incremental = result.storage.total_bytes(incremental=True)
        assert full > 0
        assert 0 < incremental <= full

    def test_mostly_constant_state_saves_a_lot(self):
        program = parse(
            "program steady():\n"
            "    a = 1\n"
            "    b = 2\n"
            "    c = 3\n"
            "    d = 4\n"
            "    i = 0\n"
            "    while i < 10:\n"
            "        checkpoint\n"
            "        i = i + 1\n"
        )
        result = Simulation(program, 2).run()
        full = result.storage.total_bytes()
        incremental = result.storage.total_bytes(incremental=True)
        # only `i` changes between checkpoints
        assert incremental < 0.7 * full

    def test_every_checkpoint_carries_sizes(self):
        result = Simulation(jacobi(), 4, params={"steps": 3}).run()
        for rank in range(4):
            for checkpoint in result.storage.history(rank):
                assert checkpoint.full_bytes > 0
                assert 0 < checkpoint.delta_bytes <= checkpoint.full_bytes

    def test_rollback_resets_delta_baseline(self):
        result = Simulation(
            jacobi(), 4, params={"steps": 8},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan.single(9.0, 1),
        ).run()
        # all stored checkpoints still have sane sizes after recovery
        for rank in range(4):
            for checkpoint in result.storage.history(rank):
                assert checkpoint.delta_bytes <= checkpoint.full_bytes
