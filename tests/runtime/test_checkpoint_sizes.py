"""Checkpoint size accounting over the measured canonical encoding.

Every byte figure in the system — per-entry ``full_bytes`` and
``payload_bytes``, store-wide ``total_bytes``, the ``stored_bytes``
statistic, the ``snapshot_bytes`` gauge — is the length of the same
canonical encoding that checksums and torn-write staging operate on.
These tests pin that single-source-of-truth property and the
full-vs-incremental semantics under every checkpoint mode.
"""

from repro.lang.parser import parse
from repro.lang.programs import jacobi, stencil_halo
from repro.obs import Observability
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.storage import DELTA_CHAIN_CAP, stored_payload


def run(program, n, mode, steps=6, failure_plan=None, observer=None):
    return Simulation(
        program,
        n,
        params={"steps": steps},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=failure_plan or FailurePlan.none(),
        checkpoint_mode=mode,
        observer=observer,
    ).run()


def entries(result):
    return [
        checkpoint
        for rank in range(4)
        for checkpoint in result.storage.history(rank)
    ]


class TestMeasuredSizes:
    def test_payload_bytes_is_wire_length(self):
        result = run(jacobi(), 4, "pruned+delta")
        for checkpoint in entries(result):
            assert checkpoint.payload_bytes == len(stored_payload(checkpoint))

    def test_full_mode_payload_equals_full(self):
        result = run(jacobi(), 4, "full")
        for checkpoint in entries(result):
            assert checkpoint.payload_kind == "full"
            assert checkpoint.payload_bytes == checkpoint.full_bytes
        assert result.storage.total_bytes() == result.storage.total_bytes(
            incremental=True
        )

    def test_every_checkpoint_carries_sizes(self):
        result = run(jacobi(), 4, "delta")
        for checkpoint in entries(result):
            assert checkpoint.full_bytes > 0
            assert 0 < checkpoint.payload_bytes <= checkpoint.full_bytes

    def test_delta_bytes_is_payload_bytes_alias(self):
        result = run(jacobi(), 4, "delta")
        checkpoint = entries(result)[0]
        assert checkpoint.delta_bytes == checkpoint.payload_bytes


class TestSizeSemantics:
    def test_mostly_constant_state_saves_a_lot(self):
        # A wide constant working set: only `i` changes between
        # checkpoints, so delta records shed all 26 constants (each
        # record still pays fixed framing — clock, cursors, frames —
        # which is why the bound is 0.7 and not near zero).
        constants = "\n".join(
            f"    c{k} = {k + 1}" for k in range(26)
        )
        program = parse(
            "program steady():\n"
            f"{constants}\n"
            "    i = 0\n"
            "    while i < 10:\n"
            "        checkpoint\n"
            "        i = i + 1\n"
        )
        result = run(program, 2, "delta")
        full = result.storage.total_bytes()
        incremental = result.storage.total_bytes(incremental=True)
        assert 0 < incremental < 0.7 * full

    def test_pruning_shrinks_even_full_payloads(self):
        full = run(stencil_halo(), 4, "full")
        pruned = run(stencil_halo(), 4, "pruned")
        assert (
            pruned.storage.total_bytes() < full.storage.total_bytes()
        ), "dead scratch variables should vanish from captured content"

    def test_delta_chain_depth_is_capped(self):
        result = run(jacobi(), 4, "delta", steps=16)
        for checkpoint in entries(result):
            assert checkpoint.delta_depth <= DELTA_CHAIN_CAP
            assert len(checkpoint.delta_ancestors) == checkpoint.delta_depth

    def test_rollback_keeps_sizes_sane(self):
        result = run(
            jacobi(),
            4,
            "pruned+delta",
            steps=8,
            failure_plan=FailurePlan.single(9.0, 1),
        )
        for checkpoint in entries(result):
            assert checkpoint.payload_bytes <= checkpoint.full_bytes


class TestOneSourceOfTruth:
    def test_stats_match_storage_totals(self):
        result = run(jacobi(), 4, "pruned+delta")
        assert result.stats.stored_bytes == result.storage.total_bytes(
            incremental=True
        )

    def test_commit_gauge_reports_wire_bytes(self):
        obs = Observability()
        result = run(jacobi(), 4, "pruned+delta", observer=obs.bus)
        gauge = obs.metrics.gauge("snapshot_bytes").value
        # The gauge holds the most recently committed payload's wire
        # size — the same measure total_bytes(incremental=True) sums.
        assert gauge in {
            float(c.payload_bytes) for c in entries(result)
        }
        dist = obs.metrics.histogram("snapshot_bytes_dist").as_dict()
        assert dist["count"] > 0
