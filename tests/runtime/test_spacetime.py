"""Space-time diagram renderer tests."""

from repro.lang.programs import jacobi, jacobi_odd_even
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.viz import render_messages, render_spacetime


def run_trace(make=jacobi, n=4, steps=3, plan=None, protocol=None):
    return Simulation(
        make(), n, params={"steps": steps},
        failure_plan=plan, protocol=protocol,
    ).run().trace


class TestSpacetime:
    def test_one_row_per_process(self):
        trace = run_trace(n=4)
        rows = [
            line for line in render_spacetime(trace).splitlines()
            if line.startswith("P")
        ]
        assert len(rows) == 4

    def test_markers_present(self):
        text = render_spacetime(run_trace())
        assert "C" in text and "s" in text and "r" in text

    def test_failure_and_restart_markers(self):
        trace = run_trace(
            steps=8,
            plan=FailurePlan.single(8.0, 1),
            protocol=ApplicationDrivenProtocol(),
        )
        text = render_spacetime(trace)
        assert "X" in text
        assert "^" in text

    def test_cut_members_highlighted(self):
        trace = run_trace()
        cut = trace.straight_cut(1)
        text = render_spacetime(trace, cut=cut)
        rows = [line for line in text.splitlines() if line.startswith("P")]
        assert sum(row.count("#") for row in rows) == 4
        assert "cut member" in text

    def test_row_width_bounded(self):
        text = render_spacetime(run_trace(), width=50)
        rows = [line for line in text.splitlines() if line.startswith("P")]
        assert all(len(row) <= 56 for row in rows)

    def test_empty_trace(self):
        from repro.runtime.trace import ExecutionTrace

        text = render_spacetime(ExecutionTrace(n_processes=2))
        assert text.count("|") == 2

    def test_time_range_reported(self):
        trace = run_trace()
        text = render_spacetime(trace)
        assert f"{trace.completion_time():.2f}" in text


class TestMessageTable:
    def test_lists_messages_with_delays(self):
        trace = run_trace()
        table = render_messages(trace)
        assert "P0->P1" in table or "P1->P0" in table
        assert "delay" in table

    def test_limit_respected(self):
        trace = run_trace(make=jacobi_odd_even, steps=6)
        table = render_messages(trace, limit=3)
        data_rows = [
            line for line in table.splitlines() if "->" in line
        ]
        assert len(data_rows) == 3
        assert "more" in table
