"""Validation and serialisation of recovery-scoped fault plans."""

import pytest

from repro.errors import SimulationError
from repro.runtime.failures import (
    FaultPlan,
    NetworkFaultEvent,
    NetworkFaultKind,
    RecoveryFaultEvent,
    RecoveryFaultKind,
)


def rf(recovery=0, rank=1, kind=RecoveryFaultKind.CRASH, attempts=1):
    return RecoveryFaultEvent(
        recovery=recovery, rank=rank, kind=kind, attempts=attempts
    )


class TestRecoveryFaultValidation:
    def test_accepts_and_sorts(self):
        plan = FaultPlan(recovery_faults=[
            rf(recovery=1, rank=0, kind=RecoveryFaultKind.READ_FAULT),
            rf(recovery=0, rank=2, kind=RecoveryFaultKind.CONTROL_LOST),
            rf(recovery=0, rank=1, kind=RecoveryFaultKind.CRASH),
        ])
        keys = [(f.recovery, f.rank) for f in plan.recovery_faults]
        assert keys == sorted(keys)

    def test_string_kind_is_normalised(self):
        plan = FaultPlan(recovery_faults=[
            rf(kind="restore-read-fail"),
        ])
        assert plan.recovery_faults[0].kind is RecoveryFaultKind.READ_FAULT

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown recovery fault"):
            FaultPlan(recovery_faults=[rf(kind="meteor-strike")])

    @pytest.mark.parametrize("bad", [
        rf(recovery=-1),
        rf(rank=-2),
        rf(attempts=0),
    ])
    def test_negative_fields_rejected(self, bad):
        with pytest.raises(SimulationError):
            FaultPlan(recovery_faults=[bad])

    def test_duplicate_rejected(self):
        with pytest.raises(SimulationError, match="duplicate recovery fault"):
            FaultPlan(recovery_faults=[
                rf(kind=RecoveryFaultKind.CONTROL_LOST),
                rf(kind=RecoveryFaultKind.CONTROL_LOST, attempts=2),
            ])

    def test_second_crash_on_crashing_rank_rejected(self):
        # The nested-failure analogue of a double crash: one CRASH
        # fault already models repeated nested crashes via `attempts`;
        # a second CRASH on the same (recovery, rank) is a plan bug.
        with pytest.raises(SimulationError, match="already-crashed rank"):
            FaultPlan(recovery_faults=[
                rf(kind=RecoveryFaultKind.CRASH),
                rf(kind=RecoveryFaultKind.CRASH, attempts=3),
            ])

    def test_same_rank_crash_in_distinct_recoveries_allowed(self):
        plan = FaultPlan(recovery_faults=[
            rf(recovery=0, kind=RecoveryFaultKind.CRASH),
            rf(recovery=1, kind=RecoveryFaultKind.CRASH),
        ])
        assert len(plan.recovery_faults) == 2


class TestPartitionWindowValidation:
    def test_overlapping_partitions_rejected(self):
        with pytest.raises(SimulationError, match="already open"):
            FaultPlan(network_faults=[
                NetworkFaultEvent(
                    time=1.0, kind=NetworkFaultKind.PARTITION, src=0, dst=1
                ),
                NetworkFaultEvent(
                    time=2.0, kind=NetworkFaultKind.PARTITION, src=1, dst=0
                ),
            ])

    def test_heal_without_partition_rejected(self):
        with pytest.raises(SimulationError, match="closes no open partition"):
            FaultPlan(network_faults=[
                NetworkFaultEvent(
                    time=1.0, kind=NetworkFaultKind.HEAL, src=0, dst=1
                ),
            ])

    def test_duplicate_crash_rejected(self):
        with pytest.raises(SimulationError, match="duplicate crash"):
            FaultPlan(crashes=[(3.0, 1), (3.0, 1)])


class TestRecoveryFaultRoundTrip:
    def plan(self):
        return FaultPlan(
            crashes=[(9.0, 1)],
            recovery_faults=[
                rf(recovery=0, rank=1, kind=RecoveryFaultKind.CRASH,
                   attempts=2),
                rf(recovery=1, rank=0, kind=RecoveryFaultKind.READ_FAULT),
                rf(recovery=1, rank=2,
                   kind=RecoveryFaultKind.CONTROL_LOST),
            ],
        )

    def test_json_round_trip_is_identity(self):
        plan = self.plan()
        rebuilt = FaultPlan.from_json_dict(plan.to_json_dict())
        assert rebuilt.recovery_faults == plan.recovery_faults
        assert rebuilt.to_json_dict() == plan.to_json_dict()

    def test_kinds_serialise_as_strings(self):
        payload = self.plan().to_json_dict()
        kinds = {e["kind"] for e in payload["recovery_faults"]}
        assert kinds == {
            "crash-in-recovery", "restore-read-fail", "control-lost"
        }

    @pytest.mark.parametrize("section,entry", [
        ("crashes", {"time": 1.0, "rank": 0, "when": 2.0}),
        ("storage_faults",
         {"time": 1.0, "rank": 0, "kind": "bit-rot", "numbr": 3}),
        ("network_faults",
         {"time": 1.0, "kind": "drop", "src": 0, "dst": 1, "dely": 0.5}),
        ("recovery_faults",
         {"recovery": 0, "rank": 1, "kind": "crash-in-recovery",
          "atempts": 2}),
    ])
    def test_unknown_event_keys_rejected(self, section, entry):
        # A typo inside an event entry must not silently drop the field
        # it was meant to set.
        with pytest.raises(SimulationError, match="unknown"):
            FaultPlan.from_json_dict({section: [entry]})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SimulationError, match="unknown top-level"):
            FaultPlan.from_json_dict({"recovry_faults": []})
