"""Model-based property tests for the FIFO network.

A hypothesis-driven reference-model test: the network under a random
program of sends/consumes/rollbacks must agree with a trivially correct
in-memory model (per-channel list + cursor pair).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.network import Network

N = 3
CHANNELS = [(s, d) for s in range(N) for d in range(N) if s != d]


class _ReferenceModel:
    """The obviously-correct model: per-channel log + cursors."""

    def __init__(self) -> None:
        self.logs = {key: [] for key in CHANNELS}
        self.delivered = {key: 0 for key in CHANNELS}
        self.next_value = 0

    def send(self, key) -> int:
        value = self.next_value
        self.next_value += 1
        self.logs[key].append(value)
        return value

    def queue(self, key):
        return self.logs[key][self.delivered[key]:]

    def consume(self, key):
        value = self.logs[key][self.delivered[key]]
        self.delivered[key] += 1
        return value

    def cursors(self):
        return {
            key: (len(self.logs[key]), self.delivered[key])
            for key in CHANNELS
        }

    def rollback(self, cursors):
        for key, (sent, delivered) in cursors.items():
            del self.logs[key][sent:]
            self.delivered[key] = min(delivered, sent)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.sampled_from(CHANNELS)),
        st.tuples(st.just("consume"), st.sampled_from(CHANNELS)),
        st.tuples(st.just("snapshot"), st.just(None)),
        st.tuples(st.just("rollback"), st.just(None)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=operations)
def test_network_matches_reference_model(ops):
    network = Network(N, base_latency=0.1, jitter=0.0)
    model = _ReferenceModel()
    time = 0.0
    snapshots = []

    for op, arg in ops:
        time += 0.1
        if op == "send":
            expected = model.send(arg)
            message = network.send(arg[0], arg[1], expected, send_time=time)
            assert message.value == expected
        elif op == "consume":
            if model.queue(arg):
                expected = model.consume(arg)
                assert network.consume(arg[0], arg[1]).value == expected
            else:
                assert network.peek(arg[0], arg[1]) is None
        elif op == "snapshot":
            snapshots.append(model.cursors())
        elif op == "rollback" and snapshots:
            cursors = snapshots.pop()
            model.rollback(cursors)
            network.rollback(
                {(s, d, "p2p"): v for (s, d), v in cursors.items()},
                restart_time=time,
            )

    # Final state: every channel's queue must match the model.
    for key in CHANNELS:
        queue = [
            m.value for m in network.queued_messages()
            if (m.src, m.dst) == key
        ]
        assert queue == model.queue(key)


@settings(max_examples=60, deadline=None)
@given(
    sends=st.lists(st.floats(min_value=0, max_value=100), max_size=20),
)
def test_fifo_arrivals_monotone(sends):
    """Whatever the send times, per-channel arrivals never reorder."""
    network = Network(2, base_latency=0.5, jitter=0.3)
    arrivals = [
        network.send(0, 1, i, send_time=t).arrival_time
        for i, t in enumerate(sends)
    ]
    assert arrivals == sorted(arrivals)
