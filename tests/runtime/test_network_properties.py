"""Model-based property tests for the FIFO network.

A hypothesis-driven reference-model test: the network under a random
program of sends/consumes/rollbacks must agree with a trivially correct
in-memory model (per-channel list + cursor pair). A second family runs
the same programs over a *faulty* medium (drops, duplicates, delays,
corruption) and requires the reliable transport to make the difference
invisible: same values, same queues, same FIFO order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.failures import NetworkFaultEvent, NetworkFaultKind
from repro.runtime.network import Network
from repro.runtime.transport import NetworkFaultInjector

N = 3
CHANNELS = [(s, d) for s in range(N) for d in range(N) if s != d]


class _ReferenceModel:
    """The obviously-correct model: per-channel log + cursors."""

    def __init__(self) -> None:
        self.logs = {key: [] for key in CHANNELS}
        self.delivered = {key: 0 for key in CHANNELS}
        self.next_value = 0

    def send(self, key) -> int:
        value = self.next_value
        self.next_value += 1
        self.logs[key].append(value)
        return value

    def queue(self, key):
        return self.logs[key][self.delivered[key]:]

    def consume(self, key):
        value = self.logs[key][self.delivered[key]]
        self.delivered[key] += 1
        return value

    def cursors(self):
        return {
            key: (len(self.logs[key]), self.delivered[key])
            for key in CHANNELS
        }

    def rollback(self, cursors):
        for key, (sent, delivered) in cursors.items():
            del self.logs[key][sent:]
            self.delivered[key] = min(delivered, sent)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.sampled_from(CHANNELS)),
        st.tuples(st.just("consume"), st.sampled_from(CHANNELS)),
        st.tuples(st.just("snapshot"), st.just(None)),
        st.tuples(st.just("rollback"), st.just(None)),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=operations)
def test_network_matches_reference_model(ops):
    network = Network(N, base_latency=0.1, jitter=0.0)
    model = _ReferenceModel()
    time = 0.0
    snapshots = []

    for op, arg in ops:
        time += 0.1
        if op == "send":
            expected = model.send(arg)
            message = network.send(arg[0], arg[1], expected, send_time=time)
            assert message.value == expected
        elif op == "consume":
            if model.queue(arg):
                expected = model.consume(arg)
                assert network.consume(arg[0], arg[1]).value == expected
            else:
                assert network.peek(arg[0], arg[1]) is None
        elif op == "snapshot":
            snapshots.append(model.cursors())
        elif op == "rollback" and snapshots:
            cursors = snapshots.pop()
            model.rollback(cursors)
            network.rollback(
                {(s, d, "p2p"): v for (s, d), v in cursors.items()},
                restart_time=time,
            )

    # Final state: every channel's queue must match the model.
    for key in CHANNELS:
        queue = [
            m.value for m in network.queued_messages()
            if (m.src, m.dst) == key
        ]
        assert queue == model.queue(key)


@settings(max_examples=60, deadline=None)
@given(
    sends=st.lists(st.floats(min_value=0, max_value=100), max_size=20),
)
def test_fifo_arrivals_monotone(sends):
    """Whatever the send times, per-channel arrivals never reorder."""
    network = Network(2, base_latency=0.5, jitter=0.3)
    arrivals = [
        network.send(0, 1, i, send_time=t).arrival_time
        for i, t in enumerate(sends)
    ]
    assert arrivals == sorted(arrivals)


# ---------------------------------------------------------------------------
# The same reference-model program, but over a faulty medium.
# ---------------------------------------------------------------------------

_ONE_SHOT_KINDS = (
    NetworkFaultKind.DROP,
    NetworkFaultKind.DUPLICATE,
    NetworkFaultKind.DELAY,
    NetworkFaultKind.CORRUPT,
)

fault_events = st.lists(
    st.tuples(
        st.sampled_from(_ONE_SHOT_KINDS),
        st.sampled_from(CHANNELS),
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=1.5, allow_nan=False),
    ),
    max_size=12,
)


def _build_injector(raw_events) -> NetworkFaultInjector:
    events = []
    seen = set()
    for kind, (src, dst), time, delay in raw_events:
        time = round(time, 6)
        key = (time, kind.value, src, dst)
        if key in seen:
            continue
        seen.add(key)
        events.append(NetworkFaultEvent(
            time=time,
            kind=kind,
            src=src,
            dst=dst,
            delay=round(delay, 6) if kind is NetworkFaultKind.DELAY else 0.0,
        ))
    return NetworkFaultInjector(events)


@settings(max_examples=120, deadline=None)
@given(ops=operations, faults=fault_events)
def test_faulty_network_matches_reference_model(ops, faults):
    """Drops, duplicates, delays, and corruption must be invisible.

    The reference model knows nothing about the transport; if the
    faulty network ever diverges from it — a lost value, a doubled
    value, reordering — the reliable transport has leaked a fault to
    the application layer. Rollback runs through the same program, so
    in-flight messages across a cut must also survive the faults.
    """
    network = Network(
        N, base_latency=0.1, jitter=0.0,
        fault_injector=_build_injector(faults),
    )
    model = _ReferenceModel()
    time = 0.0
    snapshots = []

    for op, arg in ops:
        time += 0.1
        if op == "send":
            expected = model.send(arg)
            message = network.send(arg[0], arg[1], expected, send_time=time)
            assert message.value == expected
        elif op == "consume":
            if model.queue(arg):
                assert network.consume(arg[0], arg[1]).value == model.consume(arg)
            else:
                assert network.peek(arg[0], arg[1]) is None
        elif op == "snapshot":
            snapshots.append(model.cursors())
        elif op == "rollback" and snapshots:
            cursors = snapshots.pop()
            model.rollback(cursors)
            in_flight = network.rollback(
                {(s, d, "p2p"): v for (s, d), v in cursors.items()},
                restart_time=time,
            )
            # In-flight messages across the cut survive, faults or not.
            by_channel = {}
            for message in in_flight:
                by_channel.setdefault((message.src, message.dst), []).append(
                    message.value
                )
            for key, values in by_channel.items():
                assert values == model.queue(key)

    for key in CHANNELS:
        queue = [
            m.value for m in network.queued_messages()
            if (m.src, m.dst) == key
        ]
        assert queue == model.queue(key)


@settings(max_examples=60, deadline=None)
@given(
    sends=st.lists(st.floats(min_value=0, max_value=6), max_size=15),
    faults=fault_events,
)
def test_fifo_arrivals_monotone_under_faults(sends, faults):
    """Retransmits and delays never reorder a channel's arrivals."""
    network = Network(
        2, base_latency=0.5, jitter=0.3,
        fault_injector=_build_injector(faults),
    )
    arrivals = [
        network.send(0, 1, i, send_time=t).arrival_time
        for i, t in enumerate(sends)
    ]
    assert arrivals == sorted(arrivals)
