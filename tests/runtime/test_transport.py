"""Unit tests of the reliable transport state machine.

Everything here drives :class:`ReliableTransport` directly — no engine,
no protocols — to pin down the wire-level semantics: sequence numbers,
CRC rejection, retransmission backoff, dedup, reordering, partitions,
and the give-up guard.
"""

import pytest

from repro.errors import ChannelError, SimulationError
from repro.runtime.failures import NetworkFaultEvent, NetworkFaultKind
from repro.runtime.transport import (
    NetworkFaultInjector,
    ReliableTransport,
    TransportConfig,
    frame_checksum,
)

LAT = 1.0


def transport(events=None, **config):
    return ReliableTransport(
        injector=NetworkFaultInjector(events or []),
        config=TransportConfig(**config) if config else None,
    )


def fault(kind, time, src=0, dst=1, delay=0.0):
    return NetworkFaultEvent(
        time=time, kind=kind, src=src, dst=dst, delay=delay
    )


class TestFaultFreePath:
    def test_single_attempt_one_latency(self):
        t = transport()
        delivery = t.transmit(0, 1, "p2p", 42, send_time=5.0, latency=LAT)
        assert delivery.attempts == 1
        assert delivery.delivery_time == 6.0
        assert t.stats.frames_sent == 1
        assert t.stats.retransmits == 0
        assert t.stats.ack_frames == 1

    def test_sequence_numbers_are_per_channel(self):
        t = transport()
        a = t.transmit(0, 1, "p2p", 1, send_time=0.0, latency=LAT)
        b = t.transmit(0, 1, "p2p", 2, send_time=1.0, latency=LAT)
        c = t.transmit(1, 0, "p2p", 3, send_time=0.0, latency=LAT)
        assert (a.seq, b.seq) == (0, 1)
        assert c.seq == 0  # the reverse channel counts independently

    def test_checksum_detects_any_single_bit_flip(self):
        crc = frame_checksum(7, 12345)
        for bit in range(31):
            assert frame_checksum(7, 12345 ^ (1 << bit)) != crc


class TestOneShotFaults:
    def test_drop_forces_one_retransmission(self):
        t = transport([fault(NetworkFaultKind.DROP, 0.0)])
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        assert delivery.attempts == 2
        # First copy lost; retry fires at rto = 3 x latency.
        assert delivery.delivery_time == pytest.approx(3.0 + LAT)
        assert t.stats.dropped_frames == 1
        assert t.stats.retransmits == 1

    def test_corrupt_frame_is_crc_rejected_then_retried(self):
        t = transport([fault(NetworkFaultKind.CORRUPT, 0.0)])
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        assert delivery.attempts == 2
        assert t.stats.corrupt_frames == 1

    def test_delay_fault_adds_latency(self):
        t = transport([fault(NetworkFaultKind.DELAY, 0.0, delay=0.7)])
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        assert delivery.delivery_time == pytest.approx(1.7)
        assert t.stats.delayed_frames == 1

    def test_duplicate_suppressed_by_dedup(self):
        t = transport([fault(NetworkFaultKind.DUPLICATE, 0.0)])
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        assert delivery.extra_copies == ()
        assert t.stats.duplicate_frames == 1
        assert t.stats.dups_suppressed == 1

    def test_duplicate_escapes_without_dedup(self):
        t = transport([fault(NetworkFaultKind.DUPLICATE, 0.0)], dedup=False)
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        assert len(delivery.extra_copies) == 1
        assert delivery.extra_copies[0] >= delivery.delivery_time
        assert t.stats.dups_suppressed == 0

    def test_fault_is_one_shot(self):
        t = transport([fault(NetworkFaultKind.DROP, 0.0)])
        t.transmit(0, 1, "p2p", 1, send_time=0.0, latency=LAT)
        clean = t.transmit(0, 1, "p2p", 2, send_time=10.0, latency=LAT)
        assert clean.attempts == 1

    def test_fault_only_hits_its_channel(self):
        t = transport([fault(NetworkFaultKind.DROP, 0.0, src=2, dst=0)])
        delivery = t.transmit(0, 1, "p2p", 1, send_time=5.0, latency=LAT)
        assert delivery.attempts == 1

    def test_fault_not_consumed_before_its_time(self):
        t = transport([fault(NetworkFaultKind.DROP, 50.0)])
        delivery = t.transmit(0, 1, "p2p", 1, send_time=1.0, latency=LAT)
        assert delivery.attempts == 1


class TestBackoffAndGiveUp:
    def test_rto_doubles_per_retry(self):
        events = [
            fault(NetworkFaultKind.DROP, 0.0),
            fault(NetworkFaultKind.DROP, 1.0),
        ]
        t = transport(events)
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        # Attempts at t=0 (lost), t=3 (lost), t=3+6=9 (arrives at 10).
        assert delivery.attempts == 3
        assert delivery.delivery_time == pytest.approx(10.0)

    def test_unhealed_partition_gives_up(self):
        t = transport(
            [fault(NetworkFaultKind.PARTITION, 0.0)], max_attempts=5
        )
        with pytest.raises(ChannelError, match="gave up on seq 0"):
            t.transmit(0, 1, "p2p", 5, send_time=1.0, latency=LAT)
        assert t.stats.dropped_frames == 5

    def test_healed_partition_recovers(self):
        events = [
            fault(NetworkFaultKind.PARTITION, 0.0),
            fault(NetworkFaultKind.HEAL, 5.0),
        ]
        t = transport(events)
        delivery = t.transmit(0, 1, "p2p", 5, send_time=1.0, latency=LAT)
        assert delivery.attempts > 1
        assert delivery.delivery_time > 5.0

    def test_partition_blocks_both_directions(self):
        events = [
            fault(NetworkFaultKind.PARTITION, 0.0),
            fault(NetworkFaultKind.HEAL, 4.0),
        ]
        t = transport(events)
        delivery = t.transmit(1, 0, "p2p", 5, send_time=1.0, latency=LAT)
        assert delivery.attempts > 1

    def test_ack_lost_in_partition_keeps_timer_running(self):
        # Window covers the ACK's launch (arrival at t=1) but not the
        # data frame's (t=0) — only {1,0} direction is inside at t=1.
        events = [
            fault(NetworkFaultKind.PARTITION, 0.5),
            fault(NetworkFaultKind.HEAL, 2.5),
        ]
        t = transport(events)
        delivery = t.transmit(0, 1, "p2p", 5, send_time=0.0, latency=LAT)
        assert t.stats.acks_lost >= 1
        assert delivery.attempts > 1


class TestReorderBuffer:
    def test_delayed_predecessor_holds_back_successor(self):
        # delay below the RTO so the first copy (not a retransmit) wins
        t = transport([fault(NetworkFaultKind.DELAY, 0.0, delay=0.7)])
        first = t.transmit(0, 1, "p2p", 1, send_time=0.0, latency=LAT)
        second = t.transmit(0, 1, "p2p", 2, send_time=0.5, latency=LAT)
        assert first.delivery_time == pytest.approx(1.7)
        # seq 1 physically arrives at 1.5 but is released only after
        # seq 0 fills the gap.
        assert second.delivery_time == pytest.approx(first.delivery_time)

    def test_long_delay_loses_to_the_retransmission_timer(self):
        # delay beyond the RTO: the retry's intact copy arrives first
        # and the receiver releases on it.
        t = transport([fault(NetworkFaultKind.DELAY, 0.0, delay=5.0)])
        delivery = t.transmit(0, 1, "p2p", 1, send_time=0.0, latency=LAT)
        assert delivery.attempts == 2
        assert delivery.delivery_time == pytest.approx(4.0)

    def test_rebase_resets_delivery_floor(self):
        t = transport([fault(NetworkFaultKind.DELAY, 0.0, delay=50.0)])
        t.transmit(0, 1, "p2p", 1, send_time=0.0, latency=LAT)
        t.rebase((0, 1, "p2p"), restart_time=2.0)
        delivery = t.transmit(0, 1, "p2p", 2, send_time=2.0, latency=LAT)
        assert delivery.delivery_time == pytest.approx(3.0)

    def test_seq_numbers_not_reused_after_rebase(self):
        t = transport()
        a = t.transmit(0, 1, "p2p", 1, send_time=0.0, latency=LAT)
        t.rebase((0, 1, "p2p"), restart_time=1.0)
        b = t.transmit(0, 1, "p2p", 2, send_time=1.0, latency=LAT)
        assert b.seq > a.seq


class TestInjectorAndConfig:
    def test_orphan_heal_rejected(self):
        with pytest.raises(SimulationError, match="closes no open"):
            NetworkFaultInjector([fault(NetworkFaultKind.HEAL, 1.0)])

    def test_has_faults(self):
        assert not NetworkFaultInjector([]).has_faults
        assert NetworkFaultInjector(
            [fault(NetworkFaultKind.DROP, 1.0)]
        ).has_faults

    def test_rto_factor_must_exceed_round_trip(self):
        with pytest.raises(SimulationError, match="rto_factor"):
            TransportConfig(rto_factor=2.0)

    def test_max_attempts_positive(self):
        with pytest.raises(SimulationError, match="max_attempts"):
            TransportConfig(max_attempts=0)
