"""FIFO network and rollback-cursor tests."""

import pytest

from repro.errors import ChannelError
from repro.runtime.network import Network


class TestSendReceive:
    def test_send_then_consume(self):
        net = Network(2)
        message = net.send(0, 1, 42, send_time=1.0)
        assert net.peek(0, 1) is message
        assert net.consume(0, 1).value == 42
        assert net.peek(0, 1) is None

    def test_consume_empty_raises(self):
        net = Network(2)
        with pytest.raises(ChannelError, match="empty"):
            net.consume(0, 1)

    def test_rank_validation(self):
        net = Network(2)
        with pytest.raises(ChannelError, match="out of range"):
            net.send(0, 5, 1, send_time=0.0)

    def test_lanes_are_separate(self):
        net = Network(2)
        net.send(0, 1, 7, send_time=0.0, lane="coll")
        assert net.peek(0, 1, "p2p") is None
        assert net.peek(0, 1, "coll").value == 7

    def test_message_ids_unique(self):
        net = Network(3)
        ids = {net.send(0, 1, i, send_time=0.0).message_id for i in range(10)}
        assert len(ids) == 10


class TestFifoOrdering:
    def test_arrivals_non_decreasing_per_channel(self):
        net = Network(2, base_latency=1.0, jitter=0.0)
        first = net.send(0, 1, 1, send_time=5.0)
        second = net.send(0, 1, 2, send_time=5.0)
        assert second.arrival_time >= first.arrival_time

    def test_queue_order_is_send_order(self):
        net = Network(2)
        net.send(0, 1, 10, send_time=0.0)
        net.send(0, 1, 20, send_time=0.1)
        assert net.consume(0, 1).value == 10
        assert net.consume(0, 1).value == 20

    def test_latency_deterministic_per_pair(self):
        net = Network(4, seed=7)
        assert net.latency(0, 1) == net.latency(0, 1)

    def test_latency_varies_across_pairs(self):
        net = Network(8, jitter=0.5, seed=7)
        latencies = {net.latency(i, (i + 1) % 8) for i in range(8)}
        assert len(latencies) > 1

    def test_arrival_includes_latency(self):
        net = Network(2, base_latency=2.0, jitter=0.0)
        message = net.send(0, 1, 1, send_time=3.0)
        assert message.arrival_time == pytest.approx(5.0)


class TestRollback:
    def test_full_reset_with_zero_cursors(self):
        net = Network(2)
        net.send(0, 1, 1, send_time=0.0)
        net.send(0, 1, 2, send_time=0.1)
        net.rollback({}, restart_time=10.0)
        assert net.peek(0, 1) is None
        assert net.total_sent() == 0

    def test_in_flight_preserved(self):
        net = Network(2, base_latency=1.0, jitter=0.0)
        net.send(0, 1, 1, send_time=0.0)
        net.send(0, 1, 2, send_time=0.5)
        net.consume(0, 1)
        # cut: sender had sent both, receiver had delivered one
        in_flight = net.rollback(
            {(0, 1, "p2p"): (2, 1)}, restart_time=20.0
        )
        assert [m.value for m in in_flight] == [2]
        assert net.peek(0, 1).value == 2
        assert net.peek(0, 1).arrival_time >= 20.0

    def test_post_cut_sends_truncated(self):
        net = Network(2)
        net.send(0, 1, 1, send_time=0.0)
        net.send(0, 1, 2, send_time=0.1)
        net.send(0, 1, 3, send_time=0.2)
        net.rollback({(0, 1, "p2p"): (1, 0)}, restart_time=5.0)
        assert net.consume(0, 1).value == 1
        assert net.peek(0, 1) is None

    def test_corrupt_cursors_rejected(self):
        net = Network(2)
        net.send(0, 1, 1, send_time=0.0)
        with pytest.raises(ChannelError, match="corrupt"):
            net.rollback({(0, 1, "p2p"): (5, 0)}, restart_time=1.0)

    def test_orphan_cursors_clamped_not_rejected(self):
        """delivered > sent marks an inconsistent (orphan) cut; the
        network clamps so broken recoveries can be simulated."""
        net = Network(2)
        net.send(0, 1, 1, send_time=0.0)
        net.rollback({(0, 1, "p2p"): (1, 2)}, restart_time=1.0)
        assert net.peek(0, 1) is None  # everything counted delivered

    def test_replay_after_rollback_appends_cleanly(self):
        net = Network(2)
        net.send(0, 1, 1, send_time=0.0)
        net.consume(0, 1)
        net.send(0, 1, 2, send_time=1.0)
        net.rollback({(0, 1, "p2p"): (1, 1)}, restart_time=5.0)
        net.send(0, 1, 22, send_time=6.0)  # replayed second send
        assert net.consume(0, 1).value == 22

    def test_cursors_for_covers_both_directions(self):
        net = Network(3)
        net.send(0, 1, 1, send_time=0.0)
        net.send(2, 0, 9, send_time=0.0)
        cursors = net.cursors_for(0)
        assert (0, 1, "p2p") in cursors
        assert (2, 0, "p2p") in cursors
        assert (1, 2, "p2p") not in cursors
