"""Storage garbage collection and overlapping-failure tests."""

import pytest

from repro.lang.programs import jacobi, jacobi_plain
from repro.protocols import ApplicationDrivenProtocol, MessageLoggingProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.failures import CrashEvent
from repro.runtime.storage import prune_below_common


class TestPruneBelowCommon:
    def test_prunes_obsolete_checkpoints(self):
        sim = Simulation(jacobi(), 4, params={"steps": 8})
        result = sim.run()
        before = result.storage.total_count()
        dropped = prune_below_common(result.storage, list(range(4)))
        assert dropped > 0
        assert result.storage.total_count() == before - dropped
        # the common floor remains restorable
        common = result.storage.max_common_number(list(range(4)))
        for rank in range(4):
            assert result.storage.latest_with_number(rank, common)

    def test_noop_when_only_initial(self):
        sim = Simulation(jacobi_plain(), 4, params={"steps": 2})
        result = sim.run()
        assert prune_below_common(result.storage, list(range(4))) == 0

    def test_gc_protocol_bounds_storage(self):
        plain = ApplicationDrivenProtocol()
        gc = ApplicationDrivenProtocol(gc_storage=True)
        full = Simulation(
            jacobi(), 4, params={"steps": 10}, protocol=plain
        ).run()
        pruned = Simulation(
            jacobi(), 4, params={"steps": 10}, protocol=gc
        ).run()
        assert pruned.storage.total_count() < full.storage.total_count()
        assert gc.pruned > 0
        # GC must not break behaviour
        assert pruned.final_env == full.final_env

    def test_gc_does_not_break_recovery(self):
        baseline = Simulation(jacobi(), 4, params={"steps": 10}).run()
        result = Simulation(
            jacobi(), 4, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(gc_storage=True),
            failure_plan=FailurePlan.single(11.0, 2),
        ).run()
        assert result.stats.completed
        assert result.final_env == baseline.final_env


class TestOverlappingFailures:
    """Crashes landing during/immediately after a recovery."""

    def test_back_to_back_crashes_appl_driven(self):
        baseline = Simulation(jacobi(), 4, params={"steps": 12}).run()
        plan = FailurePlan(
            crashes=[CrashEvent(10.0, 1), CrashEvent(12.5, 2),
                     CrashEvent(12.6, 3)]
        )
        result = Simulation(
            jacobi(), 4, params={"steps": 12},
            protocol=ApplicationDrivenProtocol(), failure_plan=plan,
        ).run()
        assert result.stats.completed
        assert result.stats.rollbacks == 3
        assert result.final_env == baseline.final_env

    def test_crash_during_replay_msg_logging(self):
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 15}).run()
        plan = FailurePlan(
            crashes=[CrashEvent(14.0, 1), CrashEvent(16.5, 1)]
        )
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 15},
            protocol=MessageLoggingProtocol(period=6), failure_plan=plan,
        ).run()
        assert result.stats.completed
        assert result.stats.rollbacks == 2
        assert result.final_env == baseline.final_env

    def test_same_instant_crashes(self):
        baseline = Simulation(jacobi(), 4, params={"steps": 10}).run()
        plan = FailurePlan(
            crashes=[CrashEvent(9.0, 0), CrashEvent(9.0, 3)]
        )
        result = Simulation(
            jacobi(), 4, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(), failure_plan=plan,
        ).run()
        assert result.stats.completed
        assert result.final_env == baseline.final_env


class TestProtocolDeterminism:
    @pytest.mark.parametrize("make_protocol", [
        lambda: ApplicationDrivenProtocol(),
        lambda: MessageLoggingProtocol(period=6),
    ])
    def test_same_seed_same_outcome(self, make_protocol):
        def run_once():
            return Simulation(
                jacobi(), 4, params={"steps": 10},
                protocol=make_protocol(),
                failure_plan=FailurePlan.single(9.0, 2),
                seed=5,
            ).run()

        a, b = run_once(), run_once()
        assert a.final_env == b.final_env
        assert a.completion_time == b.completion_time
        assert a.stats.checkpoints == b.stats.checkpoints
