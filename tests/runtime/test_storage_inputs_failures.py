"""Stable-storage, input-provider, and failure-plan tests."""

import pytest

from repro.causality.vector_clock import VectorClock
from repro.errors import SimulationError, StorageError
from repro.runtime.failures import CrashEvent, FailurePlan, exponential_failures
from repro.runtime.inputs import InputProvider
from repro.runtime.interpreter import ProcessSnapshot
from repro.runtime.storage import StableStorage, StoredCheckpoint


def checkpoint(rank, number, time=0.0, tag=""):
    return StoredCheckpoint(
        rank=rank,
        number=number,
        snapshot=ProcessSnapshot(
            env={}, frames=(), checkpoint_count=number, input_counters={}
        ),
        clock=VectorClock.zero(2).tick(rank),
        time=time,
        channel_cursors={},
        tag=tag,
    )


class TestStorage:
    def test_store_and_latest(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 0))
        storage.store(checkpoint(0, 1))
        assert storage.latest(0).number == 1

    def test_latest_missing_rank(self):
        with pytest.raises(StorageError, match="no checkpoint"):
            StableStorage().latest(3)

    def test_latest_with_number_picks_most_recent_instance(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 1, time=1.0))
        storage.store(checkpoint(0, 1, time=9.0))
        assert storage.latest_with_number(0, 1).time == 9.0

    def test_latest_with_number_missing(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 0))
        with pytest.raises(StorageError):
            storage.latest_with_number(0, 5)

    def test_latest_with_tag(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 1, tag="sas-1"))
        storage.store(checkpoint(0, 2, tag="sas-2"))
        assert storage.latest_with_tag(0, "sas-1").number == 1
        assert storage.latest_with_tag(0, "nope") is None

    def test_max_common_number(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 0))
        storage.store(checkpoint(0, 1))
        storage.store(checkpoint(0, 2))
        storage.store(checkpoint(1, 0))
        storage.store(checkpoint(1, 1))
        assert storage.max_common_number([0, 1]) == 1

    def test_max_common_number_empty_rank(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 0))
        assert storage.max_common_number([0, 1]) == -1

    def test_truncate_to(self):
        storage = StableStorage()
        keep = checkpoint(0, 1)
        storage.store(checkpoint(0, 0))
        storage.store(keep)
        storage.store(checkpoint(0, 2))
        dropped = storage.truncate_to(keep)
        assert dropped == 1
        assert storage.latest(0) is keep

    def test_truncate_unknown_checkpoint(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 0))
        with pytest.raises(StorageError, match="not in storage"):
            storage.truncate_to(checkpoint(0, 9))

    def test_counts(self):
        storage = StableStorage()
        storage.store(checkpoint(0, 0))
        storage.store(checkpoint(1, 0))
        storage.store(checkpoint(1, 1))
        assert storage.count(1) == 2
        assert storage.total_count() == 3


class TestInputProvider:
    def test_deterministic_per_seed(self):
        a = InputProvider(seed=5)
        b = InputProvider(seed=5)
        assert a.value("x", 0) == b.value("x", 0)

    def test_different_seeds_differ(self):
        assert InputProvider(seed=1).value("x", 0) != InputProvider(seed=2).value(
            "x", 0
        )

    def test_stream_advances(self):
        provider = InputProvider()
        assert provider.value("x", 0) != provider.value("x", 0)

    def test_labels_and_ranks_independent(self):
        provider = InputProvider()
        x0 = provider.value("x", 0)
        provider.value("y", 1)
        fresh = InputProvider()
        assert fresh.value("x", 0) == x0

    def test_snapshot_restore_replays(self):
        provider = InputProvider(seed=3)
        provider.value("x", 0)
        snap = provider.snapshot(0)
        second = provider.value("x", 0)
        provider.restore(0, snap)
        assert provider.value("x", 0) == second

    def test_restore_does_not_affect_other_ranks(self):
        provider = InputProvider()
        provider.value("x", 0)
        provider.value("x", 1)
        snap = provider.snapshot(0)
        next_for_1 = provider.value("x", 1)
        provider.restore(0, snap)
        assert provider.value("x", 1) != next_for_1  # rank 1 stream moved on


class TestFailurePlans:
    def test_crashes_sorted_by_time(self):
        plan = FailurePlan(
            crashes=[CrashEvent(5.0, 1), CrashEvent(2.0, 0), CrashEvent(9.0, 2)]
        )
        times = [c.time for c in plan.effective()]
        assert times == sorted(times)

    def test_single_and_none(self):
        assert FailurePlan.none().effective() == []
        plan = FailurePlan.single(3.0, 1)
        assert len(plan.effective()) == 1

    def test_max_failures_cap(self):
        plan = FailurePlan(
            crashes=[CrashEvent(float(i), 0) for i in range(10)],
            max_failures=3,
        )
        assert len(plan.effective()) == 3

    def test_exponential_plan_reproducible(self):
        a = exponential_failures(4, 0.05, horizon=100, seed=1)
        b = exponential_failures(4, 0.05, horizon=100, seed=1)
        assert [(c.time, c.rank) for c in a.crashes] == [
            (c.time, c.rank) for c in b.crashes
        ]

    def test_exponential_plan_within_horizon(self):
        plan = exponential_failures(4, 0.1, horizon=50, seed=2)
        assert all(c.time < 50 for c in plan.crashes)

    def test_zero_rate_empty(self):
        assert exponential_failures(4, 0.0, horizon=50).crashes == []

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            exponential_failures(2, -1.0, horizon=10)
        with pytest.raises(SimulationError):
            exponential_failures(2, 0.1, horizon=0)

    def test_rate_scales_count(self):
        sparse = exponential_failures(8, 0.01, horizon=200, seed=0)
        dense = exponential_failures(8, 0.1, horizon=200, seed=0)
        assert len(dense.crashes) > len(sparse.crashes)
