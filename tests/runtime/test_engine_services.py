"""Engine protocol-service tests: pause/resume, timers, control
messages, protocol checkpoints, and the log-replay machinery."""

import pytest

from repro.errors import SimulationError
from repro.lang.parser import parse
from repro.lang.programs import jacobi_plain
from repro.runtime import RuntimeCosts, Simulation
from repro.runtime.hooks import ControlMessage, ProtocolHooks


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class _Recorder(ProtocolHooks):
    """Hook recorder used by the service tests."""

    name = "recorder"

    def __init__(self, script=None):
        self.timer_fires = []
        self.controls = []
        self.checkpoints = []
        self.script = script or (lambda sim, tag, time: None)

    def on_start(self, sim):
        sim.schedule_timer(0, 1.0, "first")
        sim.schedule_timer(0, 2.0, "second")

    def on_timer(self, sim, rank, tag, time):
        self.timer_fires.append((tag, time))
        self.script(sim, tag, time)

    def on_control(self, sim, message):
        self.controls.append(message)

    def on_checkpoint(self, sim, rank, number):
        self.checkpoints.append((rank, number))


class TestTimers:
    def test_timers_fire_in_order(self):
        recorder = _Recorder()
        Simulation(
            program("compute(30)"), 1, protocol=recorder
        ).run()
        assert [t for t, _ in recorder.timer_fires] == ["first", "second"]
        assert recorder.timer_fires[0][1] == pytest.approx(1.0)

    def test_timers_after_completion_dropped(self):
        recorder = _Recorder()

        def reschedule(sim, tag, time):
            sim.schedule_timer(0, time + 1.0, "again")

        recorder.script = reschedule
        result = Simulation(
            program("compute(1)"), 1, protocol=recorder
        ).run()
        assert result.stats.completed


class TestControlMessages:
    def test_control_delivered_with_latency(self):
        class Sender(_Recorder):
            def on_timer(self, sim, rank, tag, time):
                super().on_timer(sim, rank, tag, time)
                if tag == "first":
                    sim.send_control(0, 1, "hello", {"k": 7}, time)

        recorder = Sender()
        costs = RuntimeCosts(control_latency=0.25)
        result = Simulation(
            program("compute(30)"), 2, protocol=recorder, costs=costs
        ).run()
        assert len(recorder.controls) == 1
        message = recorder.controls[0]
        assert message.arrival_time == pytest.approx(1.25)
        assert message.data == {"k": 7}
        assert result.stats.control_messages == 1


class TestPauseResume:
    def test_pause_blocks_progress_until_resume(self):
        class Pauser(_Recorder):
            def on_timer(self, sim, rank, tag, time):
                super().on_timer(sim, rank, tag, time)
                if tag == "first":
                    sim.pause(0)
                    sim.schedule_timer(0, 20.0, "release")
                elif tag == "release":
                    sim.resume(0, time)

        recorder = Pauser()
        result = Simulation(
            program("compute(30)"), 1, protocol=recorder
        ).run()
        # the process lost ~19 units to the pause
        assert result.completion_time >= 20.0

    def test_resume_does_not_rewind_clock(self):
        class Pauser(_Recorder):
            def on_timer(self, sim, rank, tag, time):
                super().on_timer(sim, rank, tag, time)
                if tag == "first":
                    sim.resume(0, 0.1)  # resume time in the past: no-op

        result = Simulation(
            program("compute(5)"), 1, protocol=Pauser()
        ).run()
        assert result.completion_time == pytest.approx(1.0, abs=0.2)


class TestProtocolCheckpoints:
    def test_take_checkpoint_counts_and_notifies(self):
        class Snapper(_Recorder):
            def on_timer(self, sim, rank, tag, time):
                super().on_timer(sim, rank, tag, time)
                if tag == "first":
                    sim.take_checkpoint(0, time, tag="proto", forced=True)

        recorder = Snapper()
        result = Simulation(
            program("compute(10)"), 1, protocol=recorder
        ).run()
        assert result.stats.checkpoints == 1
        assert result.stats.forced_checkpoints == 1
        assert recorder.checkpoints == [(0, 1)]
        stored = result.storage.latest(0)
        assert stored.tag == "proto"

    def test_checkpoint_on_done_process_rejected(self):
        sim = Simulation(program("compute(1)"), 1)
        sim.run()
        with pytest.raises(SimulationError, match="cannot checkpoint"):
            sim.take_checkpoint(0, 10.0, tag="late")


class TestReplayDeterminismGuard:
    def test_non_deterministic_replay_detected(self):
        """The duplicate-suppression path asserts replayed payloads
        match the log; a mismatch raises."""
        from repro.errors import ChannelError
        from repro.runtime.network import Network

        network = Network(2)
        network.send(0, 1, 10, send_time=0.0)
        network.send(0, 1, 20, send_time=0.1)
        network.replay_for_rank(
            0, {(0, 1, "p2p"): (0, 0)}, restart_time=5.0
        )
        network.send(0, 1, 10, send_time=5.1)  # matches log[0]
        with pytest.raises(ChannelError, match="non-deterministic"):
            network.send(0, 1, 99, send_time=5.2)  # log[1] was 20

    def test_replay_cursor_clears_after_catchup(self):
        from repro.runtime.network import Network

        network = Network(2)
        network.send(0, 1, 1, send_time=0.0)
        network.replay_for_rank(0, {(0, 1, "p2p"): (0, 0)}, restart_time=2.0)
        replayed = network.send(0, 1, 1, send_time=2.1)
        assert replayed.message_id == 1  # the original, not a new message
        fresh = network.send(0, 1, 2, send_time=2.2)
        assert fresh.message_id != 1
