"""Interpreter tests: execution, effects, snapshot/restore."""

import pytest

from repro.errors import SimulationError
from repro.lang.parser import parse
from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.interpreter import ProcessInterpreter


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


def run_to_completion(interp, deliveries=()):
    """Drive an interpreter, answering receives from *deliveries*."""
    effects = []
    queue = list(deliveries)
    while True:
        effect = interp.step()
        if effect is None:
            return effects
        effects.append(effect)
        if isinstance(effect, (RecvEffect, BcastRecvEffect)):
            interp.deliver(queue.pop(0))


class TestBasicExecution:
    def test_assignment_updates_env(self):
        interp = ProcessInterpreter(program("x = 2 + 3"), 0, 2)
        run_to_completion(interp)
        assert interp.env["x"] == 5

    def test_myrank_nprocs_visible(self):
        interp = ProcessInterpreter(program("x = myrank * 10 + nprocs"), 3, 8)
        run_to_completion(interp)
        assert interp.env["x"] == 38

    def test_params_preloaded(self):
        interp = ProcessInterpreter(
            program("x = steps + 1"), 0, 2, params={"steps": 9}
        )
        run_to_completion(interp)
        assert interp.env["x"] == 10

    def test_if_branches_on_rank(self):
        source = program("if myrank == 0:\n    x = 1\nelse:\n    x = 2")
        even = ProcessInterpreter(source, 0, 2)
        odd = ProcessInterpreter(source, 1, 2)
        run_to_completion(even)
        run_to_completion(odd)
        assert even.env["x"] == 1
        assert odd.env["x"] == 2

    def test_while_loop_runs_to_bound(self):
        interp = ProcessInterpreter(
            program("i = 0\nwhile i < 5:\n    i = i + 1"), 0, 2
        )
        run_to_completion(interp)
        assert interp.env["i"] == 5

    def test_for_loop_binds_counter(self):
        interp = ProcessInterpreter(
            program("total = 0\nfor k in range(4):\n    total = total + k"), 0, 2
        )
        run_to_completion(interp)
        assert interp.env["total"] == 6

    def test_negative_for_count_skips(self):
        interp = ProcessInterpreter(
            program("x = 0\nfor k in range(0 - 3):\n    x = 1"), 0, 2
        )
        run_to_completion(interp)
        assert interp.env["x"] == 0

    def test_finished_flag(self):
        interp = ProcessInterpreter(program("pass"), 0, 1)
        assert not interp.finished
        run_to_completion(interp)
        assert interp.finished


class TestEffects:
    def test_effect_sequence(self):
        source = program("x = 1\ncompute(3)\nsend(1, x)\ncheckpoint")
        effects = run_to_completion(ProcessInterpreter(source, 0, 2))
        assert isinstance(effects[0], LocalEffect)
        assert isinstance(effects[1], ComputeEffect)
        assert effects[1].cost == 3.0
        assert isinstance(effects[2], SendEffect)
        assert effects[2].dest == 1
        assert isinstance(effects[3], CheckpointEffect)

    def test_recv_blocks_until_delivery(self):
        interp = ProcessInterpreter(program("y = recv(1)\nz = y + 1"), 0, 2)
        effect = interp.step()
        assert isinstance(effect, RecvEffect)
        assert interp.awaiting_delivery
        with pytest.raises(SimulationError, match="awaiting"):
            interp.step()
        interp.deliver(41)
        run_to_completion(interp)
        assert interp.env["z"] == 42

    def test_deliver_without_pending_raises(self):
        interp = ProcessInterpreter(program("pass"), 0, 1)
        with pytest.raises(SimulationError, match="pending"):
            interp.deliver(1)

    def test_bcast_root_side(self):
        interp = ProcessInterpreter(program("v = bcast(0, 7)"), 0, 3)
        effects = run_to_completion(interp)
        assert isinstance(effects[0], BcastSendEffect)
        assert interp.env["v"] == 7

    def test_bcast_receiver_side(self):
        interp = ProcessInterpreter(program("v = bcast(0, 7)"), 2, 3)
        effect = interp.step()
        assert isinstance(effect, BcastRecvEffect)
        interp.deliver(7)
        run_to_completion(interp)
        assert interp.env["v"] == 7

    def test_checkpoint_count_increments(self):
        interp = ProcessInterpreter(
            program("checkpoint\ncheckpoint"), 0, 1
        )
        run_to_completion(interp)
        assert interp.checkpoint_count == 2


class TestRuntimeErrors:
    def test_unbound_variable(self):
        interp = ProcessInterpreter(program("x = ghost"), 0, 1)
        with pytest.raises(SimulationError, match="unbound variable 'ghost'"):
            run_to_completion(interp)

    def test_out_of_range_endpoint(self):
        interp = ProcessInterpreter(program("send(9, 1)"), 0, 2)
        with pytest.raises(SimulationError, match="out of range"):
            run_to_completion(interp)

    def test_division_by_zero(self):
        interp = ProcessInterpreter(program("x = 1 // 0"), 0, 1)
        with pytest.raises(SimulationError, match="division by zero"):
            run_to_completion(interp)

    def test_modulo_by_zero(self):
        interp = ProcessInterpreter(program("x = 1 % 0"), 0, 1)
        with pytest.raises(SimulationError, match="modulo by zero"):
            run_to_completion(interp)

    def test_bad_rank_constructor(self):
        with pytest.raises(SimulationError, match="out of range"):
            ProcessInterpreter(program("pass"), 5, 2)


class TestSnapshotRestore:
    def test_snapshot_restores_env_and_position(self):
        source = program("x = 1\ncheckpoint\nx = x + 10\nx = x + 100")
        interp = ProcessInterpreter(source, 0, 1)
        snap = None
        while True:
            effect = interp.step()
            if effect is None:
                break
            if isinstance(effect, CheckpointEffect):
                snap = interp.snapshot()
        assert interp.env["x"] == 111
        interp.restore(snap)
        assert interp.env["x"] == 1
        run_to_completion(interp)
        assert interp.env["x"] == 111

    def test_restore_replays_loop_iterations(self):
        source = program(
            "acc = 0\ni = 0\nwhile i < 4:\n    checkpoint\n    acc = acc + i\n    i = i + 1"
        )
        interp = ProcessInterpreter(source, 0, 1)
        snapshots = []
        while True:
            effect = interp.step()
            if effect is None:
                break
            if isinstance(effect, CheckpointEffect):
                snapshots.append(interp.snapshot())
        final = dict(interp.env)
        interp.restore(snapshots[1])  # start of iteration 2 (i == 1)
        assert interp.env["i"] == 1
        run_to_completion(interp)
        assert interp.env == final

    def test_snapshot_while_blocked(self):
        interp = ProcessInterpreter(program("y = recv(1)\nz = y * 2"), 0, 2)
        interp.step()
        snap = interp.snapshot()
        assert snap.pending_recv == "y"
        interp.deliver(5)
        run_to_completion(interp)
        assert interp.env["z"] == 10
        interp.restore(snap)
        assert interp.awaiting_delivery
        interp.deliver(8)
        run_to_completion(interp)
        assert interp.env["z"] == 16

    def test_snapshot_does_not_alias_live_state(self):
        interp = ProcessInterpreter(program("x = 1\nx = 2"), 0, 1)
        interp.step()
        snap = interp.snapshot()
        interp.step()
        assert snap.env["x"] == 1

    def test_checkpoint_count_preserved_across_restore(self):
        source = program("checkpoint\ncheckpoint\ncompute(1)")
        interp = ProcessInterpreter(source, 0, 1)
        snap = None
        while True:
            effect = interp.step()
            if effect is None:
                break
            if isinstance(effect, CheckpointEffect) and snap is None:
                snap = interp.snapshot()
        interp.restore(snap)
        assert interp.checkpoint_count == 1
        run_to_completion(interp)
        assert interp.checkpoint_count == 2

    def test_determinism_same_seed_inputs(self):
        source = program("x = input(noise)\ny = input(noise)")
        a = ProcessInterpreter(source, 0, 1)
        b = ProcessInterpreter(source, 0, 1)
        run_to_completion(a)
        run_to_completion(b)
        assert a.env == b.env
        assert a.env["x"] != a.env["y"]  # stream advances

    def test_input_counters_restored(self):
        source = program("x = input(noise)\ncheckpoint\ny = input(noise)")
        interp = ProcessInterpreter(source, 0, 1)
        snap = None
        while True:
            effect = interp.step()
            if effect is None:
                break
            if isinstance(effect, CheckpointEffect):
                snap = interp.snapshot()
        first_y = interp.env["y"]
        interp.restore(snap)
        run_to_completion(interp)
        assert interp.env["y"] == first_y
