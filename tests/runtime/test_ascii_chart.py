"""ASCII chart renderer tests."""

import pytest

from repro.analysis.comparison import figure8_series
from repro.errors import AnalysisError
from repro.viz import Series, curves_chart, line_chart


def simple_series(name="a", ys=(1.0, 2.0, 3.0)):
    return Series(name=name, points=tuple((float(i), y) for i, y in enumerate(ys)))


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = line_chart([simple_series()])
        assert "o a" in chart
        assert chart.count("o") >= 3

    def test_multiple_series_distinct_markers(self):
        chart = line_chart([simple_series("one"), simple_series("two", (3, 2, 1))])
        assert "o one" in chart and "x two" in chart

    def test_y_range_labels(self):
        chart = line_chart([simple_series(ys=(1.0, 5.0))])
        assert "1" in chart and "5" in chart

    def test_log_scale(self):
        chart = line_chart(
            [simple_series(ys=(0.01, 1.0, 100.0))], log_y=True
        )
        assert "1e" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            line_chart([simple_series(ys=(0.0, 1.0))], log_y=True)

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError):
            line_chart([])
        with pytest.raises(AnalysisError):
            line_chart([Series(name="e", points=())])

    def test_constant_series_does_not_crash(self):
        chart = line_chart([simple_series(ys=(2.0, 2.0, 2.0))])
        assert "o" in chart

    def test_dimensions_respected(self):
        chart = line_chart([simple_series()], width=30, height=8)
        rows = [l for l in chart.splitlines() if "|" in l]
        assert len(rows) == 8


class TestCurvesChart:
    def test_figure8_chart(self):
        chart = curves_chart(figure8_series(), log_y=True)
        for name in ("appl-driven", "SaS", "C-L"):
            assert name in chart

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["figures", "--figure", "8", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "appl-driven" in out
        assert "|" in out
