"""Simulation-engine tests: scheduling, time accounting, determinism,
deadlock detection, checkpointing, crash/rollback."""

import pytest

from repro.causality.records import EventKind
from repro.errors import DeadlockError, RecoveryError, SimulationError
from repro.lang.parser import parse
from repro.lang.programs import default_params, jacobi, master_worker
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestBasicRuns:
    def test_single_process_completes(self):
        result = Simulation(program("compute(3)"), 1).run()
        assert result.stats.completed
        assert result.completion_time > 0

    def test_two_process_exchange(self):
        source = program(
            "if myrank == 0:\n"
            "    send(1, 42)\n"
            "else:\n"
            "    y = recv(0)\n"
        )
        result = Simulation(source, 2).run()
        assert result.final_env[1]["y"] == 42
        assert result.stats.app_messages == 1

    def test_message_values_flow_correctly(self):
        source = program(
            "if myrank == 0:\n"
            "    send(1, 10)\n"
            "    y = recv(1)\n"
            "else:\n"
            "    x = recv(0)\n"
            "    send(0, x + 5)\n"
        )
        result = Simulation(source, 2).run()
        assert result.final_env[0]["y"] == 15

    def test_bcast_delivers_to_all(self):
        source = program("v = bcast(0, myrank + 100)")
        result = Simulation(source, 4).run()
        assert all(env["v"] == 100 for env in result.final_env.values())

    def test_all_programs_complete(self, any_program):
        result = Simulation(any_program, 4, params=default_params(any_program.name)).run()
        assert result.stats.completed


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        a = Simulation(jacobi(), 4, params={"steps": 4}, seed=9).run()
        b = Simulation(jacobi(), 4, params={"steps": 4}, seed=9).run()
        assert a.final_env == b.final_env
        assert [e.time for e in a.trace.events] == [
            e.time for e in b.trace.events
        ]

    def test_seed_changes_latencies_not_results(self):
        a = Simulation(jacobi(), 4, params={"steps": 4}, seed=1).run()
        b = Simulation(jacobi(), 4, params={"steps": 4}, seed=2).run()
        assert a.final_env == b.final_env
        assert a.completion_time != b.completion_time


class TestTimeAccounting:
    def test_compute_cost_charged(self):
        costs = RuntimeCosts(compute_unit=1.0, local_statement=0.0)
        result = Simulation(program("compute(7)"), 1, costs=costs).run()
        assert result.completion_time == pytest.approx(7.0)

    def test_checkpoint_overhead_charged(self):
        costs = RuntimeCosts(checkpoint_overhead=5.0, local_statement=0.0)
        result = Simulation(program("checkpoint"), 1, costs=costs).run()
        assert result.completion_time == pytest.approx(5.0)

    def test_recv_waits_for_arrival(self):
        costs = RuntimeCosts(local_statement=0.0, send_overhead=0.0,
                             recv_overhead=0.0, compute_unit=1.0)
        source = program(
            "if myrank == 0:\n"
            "    compute(10)\n"
            "    send(1, 1)\n"
            "else:\n"
            "    y = recv(0)\n"
        )
        result = Simulation(source, 2, costs=costs, base_latency=2.0).run()
        recv_event = result.trace.of_kind(EventKind.RECV)[0]
        assert recv_event.time >= 12.0

    def test_event_times_non_decreasing_per_process(self, any_program):
        result = Simulation(any_program, 4, params=default_params(any_program.name)).run()
        for rank in range(4):
            times = [e.time for e in result.trace.events_for(rank)]
            assert times == sorted(times)


class TestTraceContents:
    def test_send_recv_pair_per_message(self):
        result = Simulation(jacobi(), 4, params={"steps": 2}).run()
        sends = {e.message_id for e in result.trace.of_kind(EventKind.SEND)}
        recvs = {e.message_id for e in result.trace.of_kind(EventKind.RECV)}
        assert sends == recvs

    def test_checkpoint_events_numbered_sequentially(self):
        result = Simulation(jacobi(), 4, params={"steps": 3}).run()
        for rank, events in result.trace.checkpoint_events().items():
            numbers = [e.checkpoint_number for e in events]
            assert numbers == list(range(1, len(numbers) + 1))

    def test_checkpoint_events_carry_stmt_id(self):
        result = Simulation(jacobi(), 4, params={"steps": 2}).run()
        for events in result.trace.checkpoint_events().values():
            assert all(e.stmt_id is not None for e in events)

    def test_compute_events_off_by_default(self):
        result = Simulation(program("compute(1)"), 1).run()
        assert result.trace.of_kind(EventKind.COMPUTE) == []

    def test_compute_events_recordable(self):
        result = Simulation(
            program("compute(1)"), 1, record_compute_events=True
        ).run()
        assert len(result.trace.of_kind(EventKind.COMPUTE)) == 1


class TestDeadlockAndGuards:
    def test_mutual_wait_deadlocks(self):
        source = program("y = recv((myrank + 1) % nprocs)")
        with pytest.raises(DeadlockError) as excinfo:
            Simulation(source, 2).run()
        assert set(excinfo.value.blocked) == {0, 1}

    def test_self_deadlock_single_process(self):
        # rank 0 waits for rank 1 which finished without sending
        source = program(
            "if myrank == 0:\n    y = recv(1)\nelse:\n    compute(1)\n"
        )
        with pytest.raises(DeadlockError):
            Simulation(source, 2).run()

    def test_step_budget_guard(self):
        with pytest.raises(SimulationError, match="step budget"):
            Simulation(
                program("i = 0\nwhile i < 100000:\n    i = i + 1"),
                1,
                max_steps=100,
            ).run()

    def test_max_time_stops_early(self):
        result = Simulation(
            program("i = 0\nwhile i < 1000:\n    compute(1)\n    i = i + 1"),
            1,
        ).run(max_time=5.0)
        assert not result.stats.completed

    def test_crash_without_recovery_raises(self):
        source = program("compute(100)")
        with pytest.raises(RecoveryError, match="no recovery"):
            Simulation(
                source, 1, failure_plan=FailurePlan.single(5.0, 0)
            ).run()

    def test_need_at_least_one_process(self):
        with pytest.raises(SimulationError):
            Simulation(program("pass"), 0)


class TestCrashRecovery:
    def test_crash_after_completion_ignored(self):
        result = Simulation(
            program("compute(1)"),
            1,
            failure_plan=FailurePlan.single(1000.0, 0),
        ).run()
        assert result.stats.completed
        assert result.stats.failures == 0

    def test_failure_and_restart_events_traced(self):
        result = Simulation(
            jacobi(),
            4,
            params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan.single(11.0, 2),
        ).run()
        assert len(result.trace.of_kind(EventKind.FAILURE)) == 1
        assert len(result.trace.of_kind(EventKind.RESTART)) == 4

    def test_storage_truncated_on_rollback(self):
        result = Simulation(
            jacobi(),
            4,
            params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan.single(11.0, 2),
        ).run()
        # after truncation + replay, each rank's history is 0..steps
        for rank in range(4):
            numbers = [c.number for c in result.storage.history(rank)]
            assert numbers == sorted(numbers)
            assert len(numbers) == len(set(numbers))

    def test_replay_equivalence_various_crash_times(self):
        baseline = Simulation(jacobi(), 4, params={"steps": 8}).run().final_env
        for crash_time in (3.1, 7.9, 13.4):
            result = Simulation(
                jacobi(),
                4,
                params={"steps": 8},
                protocol=ApplicationDrivenProtocol(),
                failure_plan=FailurePlan.single(crash_time, 1),
            ).run()
            assert result.final_env == baseline, crash_time

    def test_master_worker_recovery(self):
        baseline = Simulation(
            master_worker(), 4, params={"steps": 6}
        ).run().final_env
        result = Simulation(
            master_worker(),
            4,
            params={"steps": 6},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan.single(9.3, 0),
        ).run()
        assert result.stats.completed
        assert result.final_env == baseline
