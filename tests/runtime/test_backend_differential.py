"""Differential tests: compiled backend vs the tree-walking reference.

The closure compiler must be a pure performance change — every
observable artifact (trace events with their vector clocks, stats,
final state, completion time, normalised JSONL event logs, campaign
cell artifacts, chaos verdicts) must be byte-identical to the
tree-walking interpreter it replaced. These tests drive both backends
through a workload x protocol x failure-plan grid, the @quick campaign
matrix, and the full 210-schedule chaos sweep, and compare everything.

The one sanctioned divergence surface is the campaign cell's
``spec_hash``: the backend is part of a spec's content hash (a cached
result records which executable form produced it), so cross-backend
cell comparisons strip that single field and demand byte-identity on
everything else.
"""

import dataclasses

import pytest

from repro.bench.workloads import standard_workloads, strip_checkpoints
from repro.campaign import quick_campaign
from repro.campaign.executor import _campaign_cell
from repro.errors import RecoveryError
from repro.lang import ast_nodes as ast
from repro.protocols import make_protocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation
from repro.runtime.chaos import CHAOS_PROTOCOLS, ChaosConfig, chaos_sweep
from repro.runtime.failures import CrashEvent, exponential_fault_plan


def run_fingerprint(result, jsonl=None):
    """Everything observable about a finished run, as comparable data.

    Unlike the scheduler differential, the event tuple includes the
    full vector-clock components: the compiled backend reimplements the
    statement loop, so clock propagation is exactly the kind of thing a
    subtle compilation bug would skew.
    """
    events = tuple(
        (
            e.seq, e.time, e.process, e.kind.value, e.stmt_id,
            e.message_id, e.peer, e.checkpoint_number,
            e.clock.components,
        )
        for e in result.trace.events
    )
    return (
        events,
        result.stats.as_dict(),
        result.final_env,
        result.completion_time,
        jsonl,
    )


def run_once(base, n_processes, params, protocol, make_plan, backend):
    """One observed simulation of a *shared* AST (cloned: node ids match)."""
    from repro.obs import Observability

    obs = Observability()
    sim = Simulation(
        ast.clone(base),
        n_processes,
        params=dict(params),
        costs=RuntimeCosts(),
        protocol=make_protocol(protocol, period=6.0),
        failure_plan=make_plan(n_processes),
        seed=3,
        scheduler="indexed",
        backend=backend,
        observer=obs.bus,
    )
    result = sim.run()
    return run_fingerprint(result, jsonl=obs.jsonl())


PLANS = {
    "clean": lambda n: FailurePlan.none(),
    "crash": lambda n: FailurePlan(crashes=[CrashEvent(time=12.0, rank=1)]),
    "storm": lambda n: exponential_fault_plan(
        n, horizon=40.0, failure_rate=0.02, storage_fault_rate=0.05, seed=7
    ),
}


class TestWorkloadMatrix:
    """Workload x protocol x failure-plan grid, both backends."""

    @pytest.mark.parametrize(
        "workload", standard_workloads(steps=8), ids=lambda w: w.name
    )
    @pytest.mark.parametrize("protocol", ("appl-driven", "cl", "cic"))
    @pytest.mark.parametrize("plan_name", tuple(PLANS))
    def test_byte_identical(self, workload, protocol, plan_name):
        base = workload.make_program()
        if protocol != "appl-driven":
            base = strip_checkpoints(base)

        def attempt(backend):
            # A corrupt-checkpoint storm can legitimately exhaust
            # recovery (RecoveryError); both backends must then fail
            # identically. Any other exception is a real bug and
            # propagates.
            try:
                return run_once(
                    base, workload.n_processes, workload.params,
                    protocol, PLANS[plan_name], backend,
                )
            except RecoveryError as error:
                return ("RecoveryError", str(error))

        assert attempt("compiled") == attempt("reference")


class TestCampaignMatrix:
    """The @quick campaign matrix, cell artifacts included."""

    @pytest.mark.parametrize(
        "spec", quick_campaign(), ids=lambda s: s.label
    )
    def test_cell_artifacts_identical(self, spec):
        compiled = dataclasses.replace(
            spec, observe=True, backend="compiled"
        )
        reference = dataclasses.replace(
            spec, observe=True, backend="reference"
        )
        cell_compiled = _campaign_cell(compiled).to_json_dict()
        cell_reference = _campaign_cell(reference).to_json_dict()
        assert cell_compiled["error"] is None
        # The backend is deliberately part of the spec's content hash;
        # everything else — stats, final env, completion time, the
        # stmt_id-normalised JSONL event log — must match exactly.
        assert cell_compiled.pop("spec_hash") != cell_reference.pop(
            "spec_hash"
        )
        assert cell_compiled == cell_reference


class TestChaosSweep:
    """The full 210-schedule chaos sweep under both backends."""

    def test_sweep_verdicts_identical(self):
        seeds = range(70)  # 70 seeds x 3 protocols = 210 schedules
        compiled = chaos_sweep(
            seeds,
            protocols=CHAOS_PROTOCOLS,
            config=ChaosConfig(backend="compiled"),
        )
        reference = chaos_sweep(
            seeds,
            protocols=CHAOS_PROTOCOLS,
            config=ChaosConfig(backend="reference"),
        )
        assert list(compiled) == list(reference)
        assert compiled == reference
        assert all(outcome.ok for outcome in compiled.values())


class TestBackendArgument:
    def test_unknown_backend_rejected(self):
        workload = standard_workloads(steps=4)[0]
        with pytest.raises(Exception, match="unknown backend"):
            Simulation(
                workload.make_program(),
                workload.n_processes,
                params=dict(workload.params),
                backend="jit",
            )

    def test_spec_backend_reaches_engine(self):
        spec = dataclasses.replace(
            quick_campaign()[0], backend="reference"
        )
        sim = spec.build()
        assert sim.backend == "reference"
        assert spec.build().run().stats.completed
