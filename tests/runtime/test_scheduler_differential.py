"""Differential tests: indexed scheduler vs the reference linear scan.

The indexed scheduler must be a pure performance change — every
observable artifact (trace events, stats, final state, completion
time, normalised JSONL event logs, chaos verdicts) must be
byte-identical to the original per-step scan it replaced. These tests
drive both schedulers through the campaign matrix, a workload ×
protocol × failure grid, and the full 210-schedule chaos sweep, and
compare everything.
"""

import dataclasses

import pytest

from repro.bench.workloads import standard_workloads, strip_checkpoints
from repro.campaign import quick_campaign
from repro.campaign.executor import _campaign_cell
from repro.lang import ast_nodes as ast
from repro.protocols import make_protocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation
from repro.runtime.chaos import CHAOS_PROTOCOLS, ChaosConfig, chaos_sweep
from repro.runtime.failures import CrashEvent


def run_fingerprint(result):
    """Everything observable about a finished run, as comparable data."""
    events = tuple(
        (e.seq, e.time, e.process, e.kind.value, e.stmt_id, e.message_id)
        for e in result.trace.events
    )
    return (
        events,
        result.stats.as_dict(),
        result.final_env,
        result.completion_time,
    )


def run_once(base, n_processes, params, protocol, plan, scheduler, **kwargs):
    """One simulation of a *shared* AST (cloned so node ids match)."""
    sim = Simulation(
        ast.clone(base),
        n_processes,
        params=dict(params),
        costs=RuntimeCosts(),
        protocol=make_protocol(protocol, period=6.0),
        failure_plan=FailurePlan(crashes=list(plan.crashes)),
        seed=3,
        scheduler=scheduler,
        **kwargs,
    )
    return sim.run()


class TestWorkloadMatrix:
    """Workload × protocol × failure grid, both schedulers."""

    @pytest.mark.parametrize(
        "workload", standard_workloads(steps=8), ids=lambda w: w.name
    )
    @pytest.mark.parametrize("protocol", ("appl-driven", "cl", "cic"))
    @pytest.mark.parametrize("crashed", (False, True), ids=("clean", "crash"))
    def test_byte_identical(self, workload, protocol, crashed):
        base = workload.make_program()
        if protocol != "appl-driven":
            base = strip_checkpoints(base)
        plan = (
            FailurePlan(crashes=[CrashEvent(time=12.0, rank=1)])
            if crashed
            else FailurePlan.none()
        )
        indexed = run_once(
            base, workload.n_processes, workload.params, protocol, plan,
            "indexed",
        )
        reference = run_once(
            base, workload.n_processes, workload.params, protocol, plan,
            "reference",
        )
        assert run_fingerprint(indexed) == run_fingerprint(reference)

    def test_max_time_resume_identical(self):
        """Pausing at max_time and resuming must not reorder anything.

        The ``steps`` counter inherently gains one loop iteration per
        extra ``run()`` call (both schedulers do), so the split runs
        are compared against each other in full and against the
        uninterrupted run on everything but stats.
        """
        workload = standard_workloads(steps=8)[0]
        base = workload.make_program()
        full = run_once(
            base, workload.n_processes, workload.params, "appl-driven",
            FailurePlan.none(), "indexed",
        )

        def split(scheduler):
            sim = Simulation(
                ast.clone(base),
                workload.n_processes,
                params=dict(workload.params),
                costs=RuntimeCosts(),
                protocol=make_protocol("appl-driven", period=6.0),
                failure_plan=FailurePlan.none(),
                seed=3,
                scheduler=scheduler,
            )
            sim.run(max_time=5.0)
            return sim.run()

        indexed = split("indexed")
        reference = split("reference")
        assert run_fingerprint(indexed) == run_fingerprint(reference)
        for resumed in (indexed, reference):
            assert run_fingerprint(resumed)[0] == run_fingerprint(full)[0]
            assert resumed.final_env == full.final_env
            assert resumed.completion_time == full.completion_time


class TestCampaignMatrix:
    """The @quick campaign matrix, cell artifacts included."""

    @pytest.mark.parametrize(
        "spec", quick_campaign(), ids=lambda s: s.label
    )
    def test_cell_artifacts_identical(self, spec):
        observed = dataclasses.replace(spec, observe=True)
        reference = dataclasses.replace(spec, observe=True)
        # ScenarioSpec deliberately has no scheduler field (its content
        # hash describes the experiment, not the engine internals);
        # ``Simulation.from_spec`` honours an out-of-band attribute.
        object.__setattr__(reference, "scheduler", "reference")
        cell_indexed = _campaign_cell(observed)
        cell_reference = _campaign_cell(reference)
        assert cell_indexed.error is None
        assert cell_indexed.to_json_dict() == cell_reference.to_json_dict()


class TestChaosSweep:
    """The full 210-schedule chaos sweep under both schedulers."""

    def test_sweep_verdicts_identical(self):
        seeds = range(70)  # 70 seeds x 3 protocols = 210 schedules
        indexed = chaos_sweep(
            seeds,
            protocols=CHAOS_PROTOCOLS,
            config=ChaosConfig(scheduler="indexed"),
        )
        reference = chaos_sweep(
            seeds,
            protocols=CHAOS_PROTOCOLS,
            config=ChaosConfig(scheduler="reference"),
        )
        assert list(indexed) == list(reference)
        assert indexed == reference
        assert all(outcome.ok for outcome in indexed.values())


class TestSchedulerArgument:
    def test_unknown_scheduler_rejected(self):
        workload = standard_workloads(steps=4)[0]
        with pytest.raises(Exception, match="unknown scheduler"):
            Simulation(
                workload.make_program(),
                workload.n_processes,
                params=dict(workload.params),
                scheduler="quantum",
            )
