"""Canonical checkpoint encoding: round-trip, canonicity, delta algebra.

The contract every byte-consumer (checksums, replication, torn-write
staging, accounting, delta storage) relies on: encoding is
deterministic and type-faithful, and a delta record applied to its
parent's full record reconstructs the child's full record
*byte-identically* — not merely ``==``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causality.vector_clock import VectorClock
from repro.errors import StorageError
from repro.runtime.encoding import (
    apply_delta,
    checkpoint_record,
    decode_record,
    delta_encodable,
    delta_record,
    encode_record,
)
from repro.runtime.interpreter import ProcessSnapshot
from repro.runtime.storage import StoredCheckpoint

# The closed value universe checkpoints can contain (module contract).
scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.none(),
)
values = st.recursive(
    scalars, lambda inner: st.tuples(inner, inner), max_leaves=6
)


def make_checkpoint(
    env,
    rank=0,
    number=1,
    clock=(1, 0),
    time=1.0,
    cursors=None,
    inputs=None,
    stmt_label=0,
    parent=None,
    kind="full",
):
    vc = VectorClock.zero(len(clock))
    vc = type(vc)(components=tuple(clock))
    return StoredCheckpoint(
        rank=rank,
        number=number,
        snapshot=ProcessSnapshot(
            env=dict(env),
            frames=(),
            checkpoint_count=number,
            input_counters=dict(inputs or {}),
        ),
        clock=vc,
        time=time,
        channel_cursors=dict(cursors or {}),
        stmt_id=None,
        stmt_label=stmt_label,
        tag="t",
        payload_kind=kind,
        parent=parent,
        delta_depth=0 if parent is None else parent.delta_depth + 1,
    )


class TestRoundTrip:
    @given(value=values)
    @settings(max_examples=200, deadline=None)
    def test_decode_inverts_encode(self, value):
        assert decode_record(encode_record(value)) == value

    @given(value=values)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_preserves_types(self, value):
        def shape(v):
            if isinstance(v, tuple):
                return tuple(shape(item) for item in v)
            return type(v)

        assert shape(decode_record(encode_record(value))) == shape(value)

    def test_bool_and_int_do_not_collide(self):
        assert encode_record(True) != encode_record(1)
        assert encode_record(False) != encode_record(0)
        assert decode_record(encode_record(True)) is True
        assert decode_record(encode_record(1)) == 1

    def test_equal_values_encode_identically(self):
        a = ("full", 1, 2, (("x", 3),), 4.0, None)
        b = ("full", 1, 2, (("x", 3),), 4.0, None)
        assert encode_record(a) == encode_record(b)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(StorageError):
            decode_record(encode_record(1) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(StorageError):
            decode_record(b"\xff")

    def test_unencodable_type_rejected(self):
        with pytest.raises(StorageError):
            encode_record([1, 2])


class TestDeltaAlgebra:
    def test_reconstruction_is_byte_identical(self):
        parent = make_checkpoint({"x": 1, "y": 2}, number=1)
        child = make_checkpoint(
            {"x": 1, "y": 3, "z": 4}, number=2, clock=(2, 0), time=2.0
        )
        assert delta_encodable(child, parent)
        rebuilt = apply_delta(
            checkpoint_record(parent), delta_record(child, parent)
        )
        assert encode_record(rebuilt) == encode_record(
            checkpoint_record(child)
        )

    def test_true_vs_one_counts_as_a_change(self):
        # == comparison would treat True and 1 as unchanged and
        # reconstruct the wrong type; the delta must be type-strict.
        parent = make_checkpoint({"flag": 1})
        child = make_checkpoint({"flag": True}, number=2)
        rebuilt = apply_delta(
            checkpoint_record(parent), delta_record(child, parent)
        )
        assert encode_record(rebuilt) == encode_record(
            checkpoint_record(child)
        )

    def test_unchanged_slots_are_absent_from_the_delta(self):
        parent = make_checkpoint({"x": 1, "y": 2, "z": 3})
        child = make_checkpoint(
            {"x": 1, "y": 9, "z": 3}, number=2
        )
        record = delta_record(child, parent)
        env_changes = record[4]
        assert env_changes == (("y", 9),)

    def test_env_prefix_rule(self):
        parent = make_checkpoint({"x": 1, "y": 2})
        reordered = make_checkpoint({"y": 2, "x": 1}, number=2)
        shrunk = make_checkpoint({"x": 1}, number=2)
        appended = make_checkpoint({"x": 1, "y": 2, "z": 3}, number=2)
        assert not delta_encodable(reordered, parent)
        assert not delta_encodable(shrunk, parent)
        assert delta_encodable(appended, parent)

    def test_cross_rank_not_encodable(self):
        parent = make_checkpoint({"x": 1}, rank=0)
        child = make_checkpoint({"x": 1}, rank=1, number=2)
        assert not delta_encodable(child, parent)

    def test_clock_width_mismatch_not_encodable(self):
        parent = make_checkpoint({"x": 1}, clock=(1, 0))
        child = make_checkpoint({"x": 1}, number=2, clock=(1, 0, 0))
        assert not delta_encodable(child, parent)

    def test_apply_delta_rejects_wrong_parent(self):
        parent = make_checkpoint({"x": 1}, number=1)
        other = make_checkpoint({"x": 5}, number=7)
        child = make_checkpoint({"x": 2}, number=2)
        delta = delta_record(child, parent)
        with pytest.raises(StorageError):
            apply_delta(checkpoint_record(other), delta)

    def test_apply_delta_rejects_kind_confusion(self):
        parent = make_checkpoint({"x": 1})
        child = make_checkpoint({"x": 2}, number=2)
        full = checkpoint_record(child)
        delta = delta_record(child, parent)
        with pytest.raises(StorageError):
            apply_delta(full, full)
        with pytest.raises(StorageError):
            apply_delta(delta, delta)

    @given(
        base=st.dictionaries(
            st.text(min_size=1, max_size=6), scalars, max_size=6
        ),
        updates=st.dictionaries(
            st.text(min_size=1, max_size=6), scalars, max_size=6
        ),
        appended=st.lists(scalars, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_reconstruction_property(self, base, updates, appended):
        # Forward execution only updates existing slots or appends new
        # ones; under that rule reconstruction must be byte-identical
        # for arbitrary value mixes.
        parent = make_checkpoint(base)
        child_env = dict(base)
        child_env.update(
            {k: v for k, v in updates.items() if k in child_env}
        )
        for position, value in enumerate(appended):
            child_env[f"new{position}"] = value
        child = make_checkpoint(child_env, number=2, clock=(2, 0))
        assert delta_encodable(child, parent)
        rebuilt = apply_delta(
            checkpoint_record(parent), delta_record(child, parent)
        )
        assert encode_record(rebuilt) == encode_record(
            checkpoint_record(child)
        )
