"""Fault-plan validation and fault-tolerant storage unit tests."""

import pytest

from repro.causality.vector_clock import VectorClock
from repro.errors import ChannelError, SimulationError, StorageError
from repro.runtime.failures import (
    CrashEvent,
    FailurePlan,
    FaultKind,
    FaultPlan,
    StorageFaultEvent,
    exponential_fault_plan,
)
from repro.runtime.interpreter import ProcessSnapshot
from repro.runtime.storage import (
    CheckpointStore,
    ReplicatedCheckpointStore,
    StoredCheckpoint,
    checkpoint_checksum,
)


def checkpoint(rank, number, time=0.0, tag="", env=None):
    return StoredCheckpoint(
        rank=rank,
        number=number,
        snapshot=ProcessSnapshot(
            env=dict(env or {}), frames=(), checkpoint_count=number,
            input_counters={},
        ),
        clock=VectorClock.zero(2).tick(rank),
        time=time,
        channel_cursors={},
        tag=tag,
    )


class TestFailurePlanValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(SimulationError, match="crash time"):
            FailurePlan(crashes=[CrashEvent(time=-1.0, rank=0)])

    def test_negative_crash_rank_rejected(self):
        with pytest.raises(SimulationError, match="crash rank"):
            FailurePlan(crashes=[CrashEvent(time=1.0, rank=-2)])

    def test_negative_max_failures_rejected(self):
        with pytest.raises(SimulationError, match="max_failures"):
            FailurePlan(max_failures=-1)

    def test_duplicate_time_rank_rejected(self):
        with pytest.raises(SimulationError, match="duplicate crash"):
            FailurePlan(
                crashes=[CrashEvent(5.0, 1), CrashEvent(5.0, 1)]
            )

    def test_same_time_different_ranks_allowed(self):
        plan = FailurePlan(crashes=[CrashEvent(5.0, 0), CrashEvent(5.0, 1)])
        assert len(plan.effective()) == 2


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultPlan(storage_faults=[
                StorageFaultEvent(time=1.0, rank=0, kind="meteor-strike")
            ])

    def test_string_kind_normalised(self):
        plan = FaultPlan(storage_faults=[
            StorageFaultEvent(time=1.0, rank=0, kind="bit-rot")
        ])
        assert plan.storage_faults[0].kind is FaultKind.BIT_ROT

    def test_negative_fault_time_rejected(self):
        with pytest.raises(SimulationError, match="fault time"):
            FaultPlan(storage_faults=[
                StorageFaultEvent(time=-0.5, rank=0, kind=FaultKind.BIT_ROT)
            ])

    def test_bad_attempts_and_replica_rejected(self):
        with pytest.raises(SimulationError, match="attempts"):
            FaultPlan(storage_faults=[
                StorageFaultEvent(time=1.0, rank=0,
                                  kind=FaultKind.TRANSIENT, attempts=0)
            ])
        with pytest.raises(SimulationError, match="replica"):
            FaultPlan(storage_faults=[
                StorageFaultEvent(time=1.0, rank=0,
                                  kind=FaultKind.BIT_ROT, replica=-1)
            ])

    def test_duplicate_fault_rejected(self):
        fault = StorageFaultEvent(time=1.0, rank=0, kind=FaultKind.BIT_ROT)
        with pytest.raises(SimulationError, match="duplicate storage fault"):
            FaultPlan(storage_faults=[fault, fault])

    def test_splits_write_and_rot_events(self):
        plan = FaultPlan(storage_faults=[
            StorageFaultEvent(time=2.0, rank=0, kind=FaultKind.BIT_ROT),
            StorageFaultEvent(time=1.0, rank=1, kind=FaultKind.TORN_WRITE),
            StorageFaultEvent(time=3.0, rank=0, kind=FaultKind.TRANSIENT),
        ])
        assert [f.kind for f in plan.rot_events()] == [FaultKind.BIT_ROT]
        assert len(plan.write_faults()) == 2

    def test_exponential_fault_plan_reproducible(self):
        a = exponential_fault_plan(4, 200.0, failure_rate=0.01,
                                   storage_fault_rate=0.05, seed=7)
        b = exponential_fault_plan(4, 200.0, failure_rate=0.01,
                                   storage_fault_rate=0.05, seed=7)
        assert a.storage_faults == b.storage_faults
        assert a.crashes == b.crashes
        assert a.storage_faults  # rate high enough to draw some

    def test_exponential_fault_plan_zero_rate_empty(self):
        plan = exponential_fault_plan(4, 100.0)
        assert plan.storage_faults == [] and plan.crashes == []


class TestChecksums:
    def test_checksum_deterministic_per_content(self):
        a = checkpoint(0, 1, time=2.0, env={"x": 1})
        b = checkpoint(0, 1, time=2.0, env={"x": 1})
        assert checkpoint_checksum(a) == checkpoint_checksum(b)

    def test_checksum_sensitive_to_content(self):
        a = checkpoint(0, 1, env={"x": 1})
        b = checkpoint(0, 1, env={"x": 2})
        assert checkpoint_checksum(a) != checkpoint_checksum(b)


class TestCheckpointStore:
    def test_clean_store_matches_stable_storage(self):
        store = CheckpointStore()
        receipt = store.store(checkpoint(0, 0))
        assert receipt.published and receipt.retries == 0
        assert store.latest(0).number == 0
        assert store.verify(store.latest(0))

    def test_write_fail_publishes_nothing(self):
        store = CheckpointStore(max_retries=2)
        fault = StorageFaultEvent(time=0.0, rank=0, kind=FaultKind.WRITE_FAIL)
        receipt = store.store(checkpoint(0, 1), fault=fault)
        assert not receipt.published
        assert receipt.retries == 2  # budget exhausted
        assert store.count(0) == 0  # atomic: nothing half-visible

    def test_torn_write_detected_and_discarded(self):
        store = CheckpointStore()
        fault = StorageFaultEvent(time=0.0, rank=0, kind=FaultKind.TORN_WRITE)
        receipt = store.store(checkpoint(0, 1), fault=fault)
        assert not receipt.published and receipt.torn
        assert store.count(0) == 0

    def test_transient_within_budget_succeeds(self):
        store = CheckpointStore(max_retries=3)
        fault = StorageFaultEvent(
            time=0.0, rank=0, kind=FaultKind.TRANSIENT, attempts=2
        )
        receipt = store.store(checkpoint(0, 1), fault=fault)
        assert receipt.published and receipt.retries == 2
        assert store.count(0) == 1

    def test_transient_beyond_budget_fails(self):
        store = CheckpointStore(max_retries=1)
        fault = StorageFaultEvent(
            time=0.0, rank=0, kind=FaultKind.TRANSIENT, attempts=5
        )
        receipt = store.store(checkpoint(0, 1), fault=fault)
        assert not receipt.published
        assert store.count(0) == 0

    def test_bit_rot_caught_by_verify(self):
        store = CheckpointStore()
        store.store(checkpoint(0, 0))
        store.store(checkpoint(0, 1))
        assert store.corrupt(0)  # latest
        assert not store.verify(store.latest(0))
        assert store.verify(store.history(0)[0])

    def test_corrupt_targets_specific_number(self):
        store = CheckpointStore()
        store.store(checkpoint(0, 0))
        store.store(checkpoint(0, 1))
        assert store.corrupt(0, number=0)
        assert store.verify(store.latest(0))
        assert not store.verify(store.history(0)[0])

    def test_corrupt_missing_target_is_noop(self):
        store = CheckpointStore()
        assert not store.corrupt(3)
        assert not store.corrupt(0, number=9)

    def test_intact_with_number_skips_corrupt(self):
        store = CheckpointStore()
        store.store(checkpoint(0, 1, time=1.0))
        store.store(checkpoint(0, 1, time=9.0))  # re-taken after rollback
        store.corrupt(0, number=1)  # hits the most recent instance
        survivor = store.intact_with_number(0, 1)
        assert survivor is not None and survivor.time == 1.0
        store.corrupt(0, number=1)  # now the older instance too
        assert store.intact_with_number(0, 1) is None
        assert store.corruption_detected == 2

    def test_latest_intact_reports_depth(self):
        store = CheckpointStore()
        store.store(checkpoint(0, 0))
        store.store(checkpoint(0, 1))
        store.store(checkpoint(0, 2))
        store.corrupt(0, number=2)
        survivor, depth = store.latest_intact(0)
        assert survivor.number == 1 and depth == 1

    def test_latest_intact_all_corrupt_raises(self):
        store = CheckpointStore()
        store.store(checkpoint(0, 0))
        store.corrupt(0)
        with pytest.raises(StorageError, match="no intact checkpoint"):
            store.latest_intact(0)

    def test_intact_history_filters(self):
        store = CheckpointStore()
        store.store(checkpoint(0, 0))
        store.store(checkpoint(0, 1))
        store.corrupt(0, number=1)
        assert [c.number for c in store.intact_history(0)] == [0]

    def test_foreign_checkpoint_treated_intact(self):
        # Checkpoints the store never published have no integrity record.
        store = CheckpointStore()
        assert store.verify(checkpoint(0, 5))


class TestReplicatedStore:
    def test_minority_rot_masked_by_quorum(self):
        store = ReplicatedCheckpointStore(replicas=3)
        store.store(checkpoint(0, 0))
        assert store.corrupt(0, replica=1)
        assert store.verify(store.latest(0))  # 2/3 intact

    def test_majority_rot_fails_quorum(self):
        store = ReplicatedCheckpointStore(replicas=3)
        store.store(checkpoint(0, 0))
        store.corrupt(0, replica=0)
        store.corrupt(0, replica=2)
        assert not store.verify(store.latest(0))

    def test_replica_out_of_range_rejected(self):
        store = ReplicatedCheckpointStore(replicas=3)
        store.store(checkpoint(0, 0))
        with pytest.raises(StorageError, match="replica"):
            store.corrupt(0, replica=3)

    def test_truncate_keeps_mirrors_in_sync(self):
        store = ReplicatedCheckpointStore(replicas=2)
        keep = checkpoint(0, 1)
        store.store(checkpoint(0, 0))
        store.store(keep)
        store.store(checkpoint(0, 2))
        assert store.truncate_to(keep) == 1
        for mirror in store._mirrors:
            assert mirror.latest(0) is keep

    def test_drop_prefix_keeps_mirrors_in_sync(self):
        store = ReplicatedCheckpointStore(replicas=2)
        store.store(checkpoint(0, 0))
        store.store(checkpoint(0, 1))
        assert store.drop_prefix(0, 1) == 1
        for mirror in store._mirrors:
            assert mirror.count(0) == 1


class TestEvenReplicaQuorum:
    """Quorum edges with an even replica count (no strict majority tie).

    With ``k`` replicas the quorum is ``k // 2 + 1``: for even ``k`` an
    exact half-split of intact copies must FAIL verification — a tie is
    not a majority.
    """

    def test_two_replicas_need_both(self):
        store = ReplicatedCheckpointStore(replicas=2)
        store.store(checkpoint(0, 0))
        assert store.quorum == 2
        assert store.verify(store.latest(0))  # 2/2 intact
        store.corrupt(0, replica=1)
        assert not store.verify(store.latest(0))  # 1/2 is a tie, not quorum

    def test_two_replicas_primary_rot_also_fails(self):
        store = ReplicatedCheckpointStore(replicas=2)
        store.store(checkpoint(0, 0))
        store.corrupt(0, replica=0)
        assert not store.verify(store.latest(0))

    def test_four_replicas_split_verdict_fails(self):
        store = ReplicatedCheckpointStore(replicas=4)
        store.store(checkpoint(0, 0))
        assert store.quorum == 3
        store.corrupt(0, replica=1)
        store.corrupt(0, replica=3)
        assert not store.verify(store.latest(0))  # 2/4 split verdict

    def test_four_replicas_single_rot_masked(self):
        store = ReplicatedCheckpointStore(replicas=4)
        store.store(checkpoint(0, 0))
        store.corrupt(0, replica=2)
        assert store.verify(store.latest(0))  # 3/4 >= quorum

    def test_four_replicas_majority_rot_fails(self):
        store = ReplicatedCheckpointStore(replicas=4)
        store.store(checkpoint(0, 0))
        for replica in (0, 1, 2):
            store.corrupt(0, replica=replica)
        assert not store.verify(store.latest(0))


class TestStructuredErrors:
    def test_storage_error_carries_context(self):
        error = StorageError("boom", rank=2, number=5, replica=1)
        assert error.rank == 2 and error.number == 5 and error.replica == 1
        assert "rank=2" in str(error)
        assert "checkpoint=5" in str(error)
        assert "replica=1" in str(error)

    def test_storage_error_context_optional(self):
        error = StorageError("boom")
        assert error.rank is None
        assert str(error) == "boom"

    def test_channel_error_carries_context(self):
        error = ChannelError("empty", src=1, dst=2, lane="p2p")
        assert (error.src, error.dst, error.lane) == (1, 2, "p2p")
        assert "src=1" in str(error) and "lane=p2p" in str(error)

    def test_raise_sites_populate_context(self):
        store = CheckpointStore()
        with pytest.raises(StorageError) as info:
            store.latest(7)
        assert info.value.rank == 7
        with pytest.raises(StorageError) as info:
            store.latest_with_number(1, 4)
        assert info.value.rank == 1 and info.value.number == 4

    def test_network_consume_empty_carries_channel(self):
        from repro.runtime.network import Network

        with pytest.raises(ChannelError) as info:
            Network(2).consume(0, 1, "p2p")
        assert (info.value.src, info.value.dst) == (0, 1)
        assert info.value.lane == "p2p"
