"""Extended interpreter coverage: control-flow corners at runtime."""

import pytest

from repro.lang.parser import parse
from repro.runtime import Simulation
from repro.runtime.interpreter import ProcessInterpreter


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


def run_single(source, rank=0, nprocs=1, params=None):
    interp = ProcessInterpreter(source, rank, nprocs, params=params)
    while True:
        effect = interp.step()
        if effect is None:
            return interp.env


class TestControlFlowCorners:
    def test_elif_chain_selects_correct_branch(self):
        source = program(
            "if myrank == 0:\n    r = 10\n"
            "elif myrank == 1:\n    r = 20\n"
            "elif myrank == 2:\n    r = 30\n"
            "else:\n    r = 40"
        )
        values = [run_single(source, rank, 5)["r"] for rank in range(5)]
        assert values == [10, 20, 30, 40, 40]

    def test_nested_while_in_for(self):
        env = run_single(
            program(
                "total = 0\n"
                "for k in range(3):\n"
                "    j = 0\n"
                "    while j < k:\n"
                "        total = total + 1\n"
                "        j = j + 1"
            )
        )
        assert env["total"] == 0 + 1 + 2

    def test_zero_trip_while(self):
        env = run_single(program("x = 5\nwhile x < 0:\n    x = 99"))
        assert env["x"] == 5

    def test_deeply_nested_ifs(self):
        env = run_single(
            program(
                "x = 0\n"
                "if True:\n"
                "    if True:\n"
                "        if True:\n"
                "            x = 7"
            )
        )
        assert env["x"] == 7

    def test_loop_variable_persists_after_for(self):
        env = run_single(program("for k in range(4):\n    pass\nz = k"))
        assert env["z"] == 3

    def test_boolean_short_circuit_avoids_division(self):
        env = run_single(
            program("d = 0\nx = d != 0 and 10 // d > 1\ny = d == 0 or 10 // d")
        )
        assert env["x"] == 0
        assert env["y"] == 1


class TestBcastCorners:
    def test_bcast_in_loop_with_changing_root_value(self):
        source = program(
            "acc = 0\n"
            "i = 0\n"
            "while i < 3:\n"
            "    v = bcast(0, i * 10)\n"
            "    acc = acc + v\n"
            "    i = i + 1"
        )
        result = Simulation(source, 3).run()
        assert all(env["acc"] == 0 + 10 + 20 for env in result.final_env.values())

    def test_bcast_root_by_expression(self):
        source = program("v = bcast(nprocs - 1, myrank + 100)")
        result = Simulation(source, 4).run()
        assert all(env["v"] == 103 for env in result.final_env.values())

    def test_single_process_bcast(self):
        env = run_single(program("v = bcast(0, 42)"))
        assert env["v"] == 42


class TestMixedWorkload:
    def test_interleaved_p2p_and_collective(self):
        source = program(
            "if myrank == 0:\n"
            "    send(1, 5)\n"
            "    base = bcast(0, 100)\n"
            "else:\n"
            "    got = recv(0)\n"
            "    base = bcast(0, 100)\n"
            "    send(0, got + base)\n"
            "if myrank == 0:\n"
            "    reply = recv(1)"
        )
        result = Simulation(source, 2).run()
        assert result.final_env[0]["reply"] == 105
