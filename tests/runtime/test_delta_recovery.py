"""Delta-chain recovery under the fault matrix.

The claim under test: storing minimized checkpoint content (liveness
pruning + delta encoding) changes *bytes on the wire only*. Recovery
restores byte-identical state in every checkpoint mode, on both
backends, with bit rot on chain ancestors, bounded retention, and
transient restore-read faults in the mix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.programs import jacobi, ring_pipeline, stencil_halo
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.engine import CHECKPOINT_MODES
from repro.runtime.failures import (
    CrashEvent,
    FaultPlan,
    RecoveryFaultEvent,
    RecoveryFaultKind,
)

#: Statistics that legitimately differ across content modes: they count
#: stored/reclaimed *wire* bytes, which is exactly what the modes change.
BYTE_STATS = ("stored_bytes", "gc_reclaimed_bytes")

# Fingerprints compare trace events across runs, and events carry
# statement node ids — which come from a process-global counter. Parse
# each workload once and clone per run so ids line up.
JACOBI = jacobi()
STENCIL_HALO = stencil_halo()
RING_PIPELINE = ring_pipeline()


def run(
    program,
    n,
    mode,
    steps=6,
    plan=None,
    backend="compiled",
    retain_k=None,
):
    sim = Simulation(
        program,
        n,
        params={"steps": steps},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=plan or FailurePlan.none(),
        checkpoint_mode=mode,
        backend=backend,
        retain_k=retain_k,
        seed=3,
    )
    return sim, sim.run()


def fingerprint(result):
    """Everything observable about a run except wire-byte accounting."""
    events = tuple(
        (
            e.seq, e.time, e.process, e.kind.value, e.stmt_id,
            e.message_id, e.clock.components,
        )
        for e in result.trace.events
    )
    stats = result.stats.as_dict()
    for key in BYTE_STATS:
        stats.pop(key, None)
    return (
        events, stats, result.final_env, result.completion_time,
        result.verdict,
    )


def first_delta_entry(storage, rank):
    for checkpoint in storage.history(rank):
        if checkpoint.payload_kind == "delta":
            return checkpoint
    raise AssertionError(f"rank {rank} stored no delta entry")


class TestAncestorBitRot:
    """Rot anywhere on a delta chain poisons every descendant — and
    only descendants; recovery degrades to an entry with a whole chain.
    """

    def run_and_rot(self):
        sim, result = run(ast.clone(JACOBI), 4, "delta", steps=10)
        assert result.verdict == "completed"
        storage = sim.storage
        victim = first_delta_entry(storage, 0)
        ancestor = victim.delta_ancestors[-1]  # the chain's full root
        assert storage.corrupt(0, number=ancestor.number)
        return storage, victim, ancestor

    def test_chain_aware_verify_rejects_descendants(self):
        storage, victim, ancestor = self.run_and_rot()
        assert storage.verify(ancestor) is False
        assert storage.verify(victim) is False
        # Every entry chaining through the rotten root is unrestorable;
        # entries on other chains are untouched.
        for checkpoint in storage.history(0):
            on_chain = checkpoint is ancestor or any(
                a is ancestor for a in checkpoint.delta_ancestors
            )
            assert storage.verify(checkpoint) == (not on_chain)

    def test_degraded_read_skips_the_poisoned_chain(self):
        storage, victim, ancestor = self.run_and_rot()
        poisoned = {id(ancestor)} | {
            id(c)
            for c in storage.history(0)
            if any(a is ancestor for a in c.delta_ancestors)
        }
        survivors = storage.intact_history(0)
        assert survivors, "some chain must survive a single rotten root"
        assert all(id(c) not in poisoned for c in survivors)
        fallback, _depth = storage.latest_intact(0)
        assert storage.verify(fallback)
        assert id(fallback) not in poisoned

    def test_rot_on_an_interior_delta_spares_the_root(self):
        sim, result = run(ast.clone(JACOBI), 4, "delta", steps=10)
        storage = sim.storage
        victim = first_delta_entry(storage, 0)
        assert storage.corrupt(0, number=victim.number)
        assert storage.verify(victim) is False
        # The chain *below* the rotten delta is still whole.
        for ancestor in victim.delta_ancestors:
            assert storage.verify(ancestor) is True


class TestRetentionProtectsAncestors:
    """Bounded retention never evicts a parent a surviving delta needs."""

    @pytest.mark.parametrize("retain_k", [2, 4])
    def test_surviving_chains_stay_reconstructable(self, retain_k):
        sim, result = run(
            ast.clone(JACOBI), 4, "pruned+delta", steps=16, retain_k=retain_k
        )
        assert result.verdict == "completed"
        for rank in range(4):
            history = sim.storage.history(rank)
            kept = {id(c) for c in history}
            for checkpoint in history:
                for ancestor in checkpoint.delta_ancestors:
                    assert id(ancestor) in kept, (
                        f"rank {rank} #{checkpoint.number} lost its "
                        f"parent #{ancestor.number} to GC"
                    )

    @pytest.mark.parametrize("retain_k", [2, 4])
    def test_gc_and_crash_recovery_compose(self, retain_k):
        sim, result = run(
            ast.clone(JACOBI),
            4,
            "pruned+delta",
            steps=8,
            plan=FailurePlan.single(9.0, 1),
            retain_k=retain_k,
        )
        assert result.verdict == "completed"
        assert result.stats.rollbacks > 0
        for rank in range(4):
            history = sim.storage.history(rank)
            kept = {id(c) for c in history}
            for checkpoint in history:
                assert all(
                    id(a) in kept for a in checkpoint.delta_ancestors
                )


class TestRecoveryReadFaults:
    """Transient restore-read faults + minimized content: the retrying
    supervisor still lands on byte-identical state.
    """

    def plan(self):
        return FaultPlan(
            crashes=[CrashEvent(rank=1, time=9.0)],
            recovery_faults=[
                RecoveryFaultEvent(
                    recovery=0,
                    rank=1,
                    kind=RecoveryFaultKind.READ_FAULT,
                    attempts=2,
                )
            ],
        )

    def test_minimized_run_completes_through_read_faults(self):
        sim, result = run(
            ast.clone(JACOBI), 4, "pruned+delta", steps=8, plan=self.plan()
        )
        assert result.verdict == "completed"
        assert result.stats.rollbacks > 0
        assert result.stats.recovery_read_faults >= 2

    def test_read_faulted_recovery_matches_full_mode(self):
        _, full = run(ast.clone(JACOBI), 4, "full", steps=8, plan=self.plan())
        _, minimized = run(
            ast.clone(JACOBI), 4, "pruned+delta", steps=8, plan=self.plan()
        )
        assert fingerprint(full) == fingerprint(minimized)


class TestCrossModeIdentity:
    """All four content modes x both backends: one behaviour."""

    CASES = [
        ("stencil_halo-clean", STENCIL_HALO, 6, None),
        ("stencil_halo-crash", STENCIL_HALO, 6, FailurePlan.single(9.5, 1)),
        ("ring_pipeline-crash", RING_PIPELINE, 6, FailurePlan.single(9.5, 1)),
    ]

    @pytest.mark.parametrize(
        "base,steps,plan",
        [case[1:] for case in CASES],
        ids=[case[0] for case in CASES],
    )
    def test_every_mode_and_backend_agrees(self, base, steps, plan):
        _, baseline = run(
            ast.clone(base), 4, "full", steps=steps, plan=plan
        )
        expected = fingerprint(baseline)
        if plan is not None:
            assert baseline.stats.rollbacks > 0
        for mode in CHECKPOINT_MODES:
            for backend in ("compiled", "reference"):
                _, result = run(
                    ast.clone(base),
                    4,
                    mode,
                    steps=steps,
                    plan=plan,
                    backend=backend,
                )
                assert fingerprint(result) == expected, (
                    f"mode={mode} backend={backend} diverged from "
                    f"full/compiled"
                )


class TestPrunedRestoreProperty:
    """restore(prune(snapshot)) == snapshot, end to end: a pruned+delta
    run is observationally identical to a full-content run for random
    crash schedules.
    """

    @given(
        rank=st.integers(min_value=0, max_value=3),
        half_steps=st.integers(min_value=4, max_value=30),
    )
    @settings(max_examples=15, deadline=None)
    def test_minimized_equals_full_under_random_crashes(
        self, rank, half_steps
    ):
        plan = FailurePlan.single(half_steps / 2.0, rank)
        _, full = run(ast.clone(JACOBI), 4, "full", steps=8, plan=plan)
        _, minimized = run(
            ast.clone(JACOBI), 4, "pruned+delta", steps=8, plan=plan
        )
        assert fingerprint(full) == fingerprint(minimized)
