"""Bounded-storage retention: the k-per-rank policy and its safe-GC
invariant.

The property at stake (ISSUE acceptance): GC never removes the deepest
intact checkpoint of any rank — nor the latest intact one, nor the
degraded-fallback candidates around the recovery line — under
arbitrary interleavings of stores, corruptions, and collections,
including under even-replica quorum verification.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causality.vector_clock import VectorClock
from repro.errors import StorageError
from repro.lang.programs import ring_pipeline
from repro.protocols import ApplicationDrivenProtocol, UncoordinatedProtocol
from repro.runtime import (
    FaultPlan,
    RecoveryFaultEvent,
    RecoveryFaultKind,
    Simulation,
)
from repro.runtime.interpreter import ProcessSnapshot
from repro.runtime.storage import (
    CheckpointStore,
    ReplicatedCheckpointStore,
    RetentionPolicy,
    StoredCheckpoint,
)


def checkpoint(rank, number, time=None, size=100):
    stored = StoredCheckpoint(
        rank=rank,
        number=number,
        snapshot=ProcessSnapshot(
            env={"n": number}, frames=(), checkpoint_count=number,
            input_counters={},
        ),
        clock=VectorClock.zero(4).tick(rank),
        time=float(number) if time is None else time,
        channel_cursors={},
        tag="t",
    )
    # Seed the lazy byte cache so reclaimed-byte accounting is exact
    # and deterministic in these structural tests.
    stored.__dict__["_full_bytes"] = size
    return stored


class TestRetentionPolicy:
    def test_rejects_degenerate_k(self):
        with pytest.raises(StorageError):
            RetentionPolicy(retain_k=1)
        with pytest.raises(StorageError):
            RetentionPolicy(retain_k=4, protect_depth=-1)

    def test_bounds_occupancy(self):
        store = CheckpointStore()
        for number in range(12):
            store.store(checkpoint(0, number))
        policy = RetentionPolicy(retain_k=4, protect_depth=1)
        collected, reclaimed = policy.collect(store, [0])
        assert store.count(0) == 4
        assert collected == 8
        assert reclaimed == 8 * 100
        assert store.gc_collected == 8
        assert store.gc_reclaimed_bytes == 8 * 100

    def test_newest_and_deepest_survive(self):
        store = CheckpointStore()
        entries = [checkpoint(0, number) for number in range(10)]
        for entry in entries:
            store.store(entry)
        RetentionPolicy(retain_k=3, protect_depth=0).collect(store, [0])
        history = store.history(0)
        assert entries[0] in history
        assert entries[-1] in history

    def test_corrupt_entries_evicted_first(self):
        store = CheckpointStore()
        for number in range(8):
            store.store(checkpoint(0, number))
        assert store.corrupt(0, number=4)
        RetentionPolicy(retain_k=6, protect_depth=0).collect(store, [0])
        numbers = [c.number for c in store.history(0)]
        assert 4 not in numbers
        assert store.count(0) == 6

    def test_greedy_spacing_merges_smallest_gap(self):
        # Times 0, 1, 2, 10, 20: evicting "1" merges the smallest gap
        # (0..2); the well-spaced tail must be kept.
        store = CheckpointStore()
        for number, time in enumerate((0.0, 1.0, 2.0, 10.0, 20.0)):
            store.store(checkpoint(0, number, time=time))
        RetentionPolicy(retain_k=4, protect_depth=0).collect(store, [0])
        times = [c.time for c in store.history(0)]
        assert times == [0.0, 2.0, 10.0, 20.0]

    def test_stops_at_protected_set(self):
        # With a deep protection window, every entry may be protected;
        # occupancy then exceeds retain_k rather than breaking the
        # recovery line.
        store = CheckpointStore()
        for number in range(6):
            store.store(checkpoint(0, number))
        policy = RetentionPolicy(retain_k=2, protect_depth=5)
        policy.collect(store, [0])
        numbers = {c.number for c in store.history(0)}
        # Common number is 5; the whole fallback window 0..5 survives.
        assert numbers == {0, 1, 2, 3, 4, 5}


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.integers(0, 2)),
        st.tuples(st.just("corrupt"), st.integers(0, 2)),
        st.tuples(st.just("collect"), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=120, deadline=None)
@given(
    ops=OPS,
    retain_k=st.integers(2, 4),
    protect_depth=st.integers(0, 3),
)
def test_gc_never_removes_recovery_floor(ops, retain_k, protect_depth):
    """The deepest and latest intact checkpoints of every rank survive
    any store/corrupt/collect interleaving."""
    store = CheckpointStore()
    policy = RetentionPolicy(retain_k=retain_k, protect_depth=protect_depth)
    ranks = [0, 1, 2]
    counters = {rank: 0 for rank in ranks}
    for rank in ranks:  # every rank starts with its initial checkpoint
        store.store(checkpoint(rank, 0))
        counters[rank] = 1
    for op, rank in ops:
        if op == "store":
            store.store(checkpoint(rank, counters[rank]))
            counters[rank] += 1
        elif op == "corrupt":
            store.corrupt(rank)
        else:
            floors = {}
            for r in ranks:
                intact = [c for c in store.history(r) if store.verify(c)]
                floors[r] = (
                    intact[0] if intact else None,
                    intact[-1] if intact else None,
                )
            policy.collect(store, ranks)
            for r in ranks:
                history = store.history(r)
                deepest, latest = floors[r]
                if deepest is not None:
                    assert deepest in history
                    assert latest in history
                assert history, "GC emptied a rank's history"


@settings(max_examples=60, deadline=None)
@given(ops=OPS, retain_k=st.integers(2, 4))
def test_gc_under_even_replica_quorum(ops, retain_k):
    """With replicas=2 every rot breaks quorum (2 of 2 required), the
    harshest verification regime — the floor must still survive."""
    store = ReplicatedCheckpointStore(replicas=2)
    policy = RetentionPolicy(retain_k=retain_k, protect_depth=2)
    ranks = [0, 1]
    counters = {rank: 1 for rank in ranks}
    for rank in ranks:
        store.store(checkpoint(rank, 0))
    replica = 0
    for op, rank in ops:
        rank = rank % 2
        if op == "store":
            store.store(checkpoint(rank, counters[rank]))
            counters[rank] += 1
        elif op == "corrupt":
            # Alternate which replica rots; quorum=2 means either one
            # kills the entry.
            store.corrupt(rank, replica=replica)
            replica = 1 - replica
        else:
            floors = {}
            for r in ranks:
                intact = [c for c in store.history(r) if store.verify(c)]
                floors[r] = intact[0] if intact else None
            policy.collect(store, ranks)
            for r in ranks:
                if floors[r] is not None:
                    assert floors[r] in store.history(r)


class TestRetentionInEngine:
    def test_bounded_run_matches_unbounded(self):
        unbounded = Simulation(
            ring_pipeline(), 3, params={"steps": 30},
            protocol=UncoordinatedProtocol(period=6.0),
        ).run()
        bounded = Simulation(
            ring_pipeline(), 3, params={"steps": 30},
            protocol=UncoordinatedProtocol(period=6.0), retain_k=2,
        ).run()
        assert bounded.final_env == unbounded.final_env
        assert bounded.stats.gc_collected > 0
        assert (
            bounded.stats.stored_checkpoints
            < unbounded.stats.stored_checkpoints
        )

    def test_retention_with_crash_recovery(self):
        baseline = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
        ).run()
        plan = FaultPlan(crashes=[(19.5, 1)])
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(), failure_plan=plan,
            retain_k=3,
        ).run()
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_retention_with_escalated_recovery(self):
        # Nested crashes escalate the fallback two cuts deep while GC
        # runs with k=3: the degraded candidates must still be there.
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            recovery_faults=[RecoveryFaultEvent(
                recovery=0, rank=1, kind=RecoveryFaultKind.CRASH,
                attempts=2,
            )],
        )
        baseline = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
        ).run()
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(), failure_plan=plan,
            retain_k=3,
        ).run()
        assert result.verdict == "completed"
        assert result.final_env == baseline.final_env

    def test_occupancy_stats_surface(self):
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 20},
            protocol=UncoordinatedProtocol(period=6.0), retain_k=2,
        ).run()
        stats = result.stats.as_dict()
        assert stats["stored_checkpoints"] == result.storage.total_count()
        assert stats["stored_bytes"] == result.storage.total_bytes()
        assert stats["gc_collected"] == result.storage.gc_collected
        assert (
            stats["gc_reclaimed_bytes"]
            == result.storage.gc_reclaimed_bytes
        )
