"""Trace serialisation tests."""

import json

import pytest

from repro.errors import SimulationError
from repro.lang.programs import jacobi, tree_reduce
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.export import (
    export_trace,
    import_trace,
    trace_from_json,
    trace_to_json,
)


def sample_trace(make=jacobi, n=4, steps=3, plan=None, protocol=None):
    return Simulation(
        make(), n, params={"steps": steps},
        failure_plan=plan, protocol=protocol,
    ).run().trace


class TestRoundTrip:
    def test_events_preserved_exactly(self):
        trace = sample_trace()
        rebuilt = import_trace(export_trace(trace))
        assert rebuilt.n_processes == trace.n_processes
        assert rebuilt.events == trace.events

    def test_json_round_trip(self):
        trace = sample_trace(make=tree_reduce)
        text = trace_to_json(trace)
        json.loads(text)  # valid JSON
        rebuilt = trace_from_json(text)
        assert rebuilt.events == trace.events

    def test_failure_events_round_trip(self):
        trace = sample_trace(
            steps=8,
            plan=FailurePlan.single(8.0, 1),
            protocol=ApplicationDrivenProtocol(),
        )
        rebuilt = trace_from_json(trace_to_json(trace))
        kinds = [e.kind for e in rebuilt.events]
        assert kinds == [e.kind for e in trace.events]

    def test_analyses_work_on_rebuilt_trace(self):
        trace = sample_trace()
        rebuilt = import_trace(export_trace(trace))
        assert rebuilt.all_straight_cuts_consistent() == (
            trace.all_straight_cuts_consistent()
        )
        assert rebuilt.max_straight_cut_index() == trace.max_straight_cut_index()

    def test_appending_after_import_continues_sequences(self):
        from repro.causality.records import EventKind
        from repro.causality.vector_clock import VectorClock

        trace = sample_trace()
        rebuilt = import_trace(export_trace(trace))
        before = len(rebuilt.events_for(0))
        event = rebuilt.append(
            EventKind.COMPUTE, 0, 99.0, VectorClock.zero(4)
        )
        assert event.seq == before


class TestErrors:
    def test_unsupported_format(self):
        with pytest.raises(SimulationError, match="format"):
            import_trace({"format": 99, "n_processes": 1, "events": []})

    def test_malformed_event(self):
        with pytest.raises(SimulationError, match="malformed"):
            import_trace(
                {
                    "format": 1,
                    "n_processes": 1,
                    "events": [{"kind": "nonsense"}],
                }
            )

    def test_optional_fields_absent(self):
        data = {
            "format": 1,
            "n_processes": 1,
            "events": [
                {
                    "kind": "compute",
                    "process": 0,
                    "seq": 0,
                    "time": 1.0,
                    "clock": [1],
                }
            ],
        }
        trace = import_trace(data)
        assert trace.events[0].message_id is None
