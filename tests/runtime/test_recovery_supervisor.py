"""The retrying recovery supervisor: faults during rollback and replay.

Covers the tentpole acceptance scenarios: nested crashes during
rollback are retried with backoff and an escalating degraded fallback;
transient restore-read faults and lost control traffic are absorbed;
an exhausted retry budget ends in a clean UNRECOVERABLE verdict (never
an unhandled exception); and a plan without recovery faults reproduces
the unsupervised behavior exactly.
"""

import json

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.lang.programs import ring_pipeline
from repro.protocols import (
    ApplicationDrivenProtocol,
    MessageLoggingProtocol,
    UncoordinatedProtocol,
)
from repro.runtime import (
    FailurePlan,
    FaultPlan,
    RecoveryFaultEvent,
    RecoveryFaultKind,
    Simulation,
    SupervisorConfig,
)


def run_ring(protocol, fault_plan=None, recovery=None, **kwargs):
    return Simulation(
        ring_pipeline(), 3, params={"steps": 10}, protocol=protocol,
        failure_plan=fault_plan, recovery=recovery, **kwargs,
    ).run()


def crash_plan(**fault_kwargs):
    """One crash of rank 1 plus one fault on its recovery."""
    faults = []
    if fault_kwargs:
        faults = [RecoveryFaultEvent(recovery=0, rank=1, **fault_kwargs)]
    return FaultPlan(crashes=[(19.5, 1)], recovery_faults=faults)


class TestSupervisorConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_factor": 0.5},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(SimulationError):
            SupervisorConfig(**kwargs)

    def test_fault_rank_must_exist(self):
        plan = crash_plan(kind=RecoveryFaultKind.CRASH)
        bad = FaultPlan(
            crashes=plan.crashes,
            recovery_faults=[RecoveryFaultEvent(
                recovery=0, rank=7, kind=RecoveryFaultKind.CRASH
            )],
        )
        with pytest.raises(SimulationError, match="rank"):
            Simulation(
                ring_pipeline(), 3, params={"steps": 10},
                protocol=ApplicationDrivenProtocol(), failure_plan=bad,
            )


class TestNestedCrashRetry:
    @pytest.mark.parametrize("make_protocol", [
        lambda: ApplicationDrivenProtocol(),
        lambda: UncoordinatedProtocol(period=6.0),
        lambda: MessageLoggingProtocol(period=6.0),
    ])
    def test_retried_and_completes(self, make_protocol):
        result = run_ring(
            make_protocol(),
            crash_plan(kind=RecoveryFaultKind.CRASH, attempts=2),
        )
        assert result.verdict == "completed"
        assert result.stats.completed
        assert result.stats.nested_crashes == 2
        assert result.stats.recovery_retries == 2
        assert result.stats.recovery_attempts == 3
        # Backoff is charged to the simulated clock, not swallowed.
        assert result.stats.recovery_backoff_time == pytest.approx(
            0.5 + 1.0
        )

    def test_state_matches_crash_only_run(self):
        # The nested crashes delay recovery but must not change what
        # is recovered: the final state equals the plain-crash run's.
        baseline = run_ring(
            ApplicationDrivenProtocol(), FailurePlan.single(19.5, 1)
        )
        result = run_ring(
            ApplicationDrivenProtocol(),
            crash_plan(kind=RecoveryFaultKind.CRASH, attempts=2),
        )
        assert result.final_env == baseline.final_env

    def test_read_fault_is_retried(self):
        result = run_ring(
            MessageLoggingProtocol(period=6.0),
            crash_plan(kind=RecoveryFaultKind.READ_FAULT),
        )
        assert result.verdict == "completed"
        assert result.stats.recovery_read_faults == 1
        assert result.stats.recovery_retries >= 1

    def test_control_lost_is_retried(self):
        result = run_ring(
            ApplicationDrivenProtocol(),
            crash_plan(kind=RecoveryFaultKind.CONTROL_LOST),
        )
        assert result.verdict == "completed"
        assert result.stats.recovery_control_lost == 1
        assert result.stats.recovery_retries == 1


class TestUnrecoverableVerdict:
    def test_exhausted_budget_is_a_clean_verdict(self):
        # Four attempts, four nested crashes: the supervisor gives up
        # with a verdict instead of leaking an exception out of run().
        result = run_ring(
            ApplicationDrivenProtocol(),
            crash_plan(kind=RecoveryFaultKind.CRASH, attempts=4),
        )
        assert result.verdict == "unrecoverable"
        assert result.stats.unrecoverable
        assert not result.stats.completed

    def test_custom_budget_changes_outcome(self):
        plan = crash_plan(kind=RecoveryFaultKind.CRASH, attempts=4)
        tight = run_ring(
            ApplicationDrivenProtocol(), plan,
            recovery=SupervisorConfig(max_attempts=2),
        )
        roomy = run_ring(
            ApplicationDrivenProtocol(), plan,
            recovery=SupervisorConfig(max_attempts=6),
        )
        assert tight.verdict == "unrecoverable"
        assert roomy.verdict == "completed"


class TestDeterminism:
    def test_zero_recovery_faults_matches_unsupervised(self):
        # An empty recovery-fault list must reproduce the pre-supervisor
        # behavior bit for bit: same stats, same final state.
        plain = run_ring(
            ApplicationDrivenProtocol(), FailurePlan.single(19.5, 1)
        )
        supervised = run_ring(
            ApplicationDrivenProtocol(), crash_plan()
        )
        assert supervised.final_env == plain.final_env
        assert supervised.stats.recovery_retries == 0
        assert supervised.stats.recovery_backoff_time == 0.0
        assert supervised.stats.rollbacks == plain.stats.rollbacks

    def test_same_plan_same_outcome(self):
        plan = crash_plan(kind=RecoveryFaultKind.CRASH, attempts=2)
        first = run_ring(ApplicationDrivenProtocol(), plan, seed=5)
        second = run_ring(ApplicationDrivenProtocol(), plan, seed=5)
        assert first.final_env == second.final_env
        assert first.stats == second.stats


class TestCli:
    def test_recovery_fault_flag(self, capsys):
        assert main([
            "simulate", "@ring_pipeline", "-n", "3", "--steps", "10",
            "--protocol", "appl-driven", "--crash", "19.5:1",
            "--recovery-fault", "crash-in-recovery:0:1:2",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "recovery superv." in out
        assert "retries=2" in out

    def test_retain_k_flag(self, capsys):
        assert main([
            "simulate", "@ring_pipeline", "-n", "3", "--steps", "10",
            "--protocol", "uncoordinated", "--retain-k", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "retention (k=3)" in out

    def test_bad_recovery_fault_spec(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "simulate", "@ring_pipeline",
                "--recovery-fault", "bogus-kind:0:1",
            ])

    def test_stats_json_includes_supervisor_fields(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        assert main([
            "simulate", "@ring_pipeline", "-n", "3", "--steps", "10",
            "--protocol", "appl-driven", "--crash", "19.5:1",
            "--recovery-fault", "crash-in-recovery:0:1",
            "--retain-k", "4", "--stats-json", str(stats_path),
        ]) == 0
        stats = json.loads(stats_path.read_text())
        assert stats["recovery_retries"] == 1
        assert stats["nested_crashes"] == 1
        assert stats["stored_checkpoints"] > 0
        assert "gc_collected" in stats
        assert stats["unrecoverable"] is False
