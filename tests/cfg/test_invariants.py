"""Structural CFG invariants, property-tested over random programs.

These are the well-formedness guarantees every other analysis relies
on; checking them over the generator's program family catches builder
regressions that the targeted tests might miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import NodeKind, build_cfg
from repro.cfg.dominators import compute_dominators, find_back_edges
from repro.cfg.paths import acyclic_paths, reachable_from
from repro.lang.generator import generate_exchange_program

programs = st.builds(
    generate_exchange_program,
    seed=st.integers(min_value=0, max_value=50_000),
    checkpoint_position=st.sampled_from(["head", "split"]),
)


@settings(max_examples=40, deadline=None)
@given(program=programs)
def test_every_node_reachable_and_reaches_exit(program):
    cfg = build_cfg(program)
    from_entry = reachable_from(cfg, cfg.entry_id)
    assert from_entry == frozenset(n.node_id for n in cfg.nodes())
    # co-reachability: every node reaches exit
    predecessors_closure = set()
    stack = [cfg.exit_id]
    while stack:
        current = stack.pop()
        if current in predecessors_closure:
            continue
        predecessors_closure.add(current)
        stack.extend(cfg.predecessors(current))
    assert predecessors_closure == set(from_entry)


@settings(max_examples=40, deadline=None)
@given(program=programs)
def test_out_degree_bounds(program):
    cfg = build_cfg(program)
    for node in cfg.nodes():
        degree = len(cfg.successors(node.node_id))
        if node.kind is NodeKind.EXIT:
            assert degree == 0
        elif node.kind is NodeKind.BRANCH:
            assert 1 <= degree <= 2
        else:
            assert degree == 1, node


@settings(max_examples=40, deadline=None)
@given(program=programs)
def test_branch_edges_labelled(program):
    cfg = build_cfg(program)
    for node in cfg.nodes_of_kind(NodeKind.BRANCH):
        labels = sorted(e.label for e in cfg.out_edges(node.node_id))
        assert labels in (["false", "true"], ["true"]), labels


@settings(max_examples=40, deadline=None)
@given(program=programs)
def test_back_edges_target_loop_headers(program):
    cfg = build_cfg(program)
    for edge in find_back_edges(cfg):
        assert cfg.node(edge.dst).is_loop_header


@settings(max_examples=30, deadline=None)
@given(program=programs)
def test_dominator_tree_rooted_at_entry(program):
    cfg = build_cfg(program)
    dom = compute_dominators(cfg)
    for node_id, dominators in dom.items():
        assert cfg.entry_id in dominators
        assert node_id in dominators


@settings(max_examples=30, deadline=None)
@given(program=programs)
def test_paths_traverse_real_edges(program):
    cfg = build_cfg(program)
    from repro.cfg.paths import once_through_successors

    succ = once_through_successors(cfg)
    for path in acyclic_paths(cfg):
        for src, dst in zip(path, path[1:]):
            assert dst in succ[src]
