"""Tests for the bitmask checkpoint indexing and the path-limit deprecation.

:func:`~repro.cfg.paths.index_checkpoints` must agree with
:func:`~repro.cfg.paths.enumerate_checkpoints` on depth, balance, and
the ``S_i`` columns for every program — it is the decision procedure;
enumeration survives for witness paths and differential testing.
"""

import pytest

from repro.bench.transform_hotpath import branchy_program
from repro.cfg import (
    CheckpointIndexing,
    build_cfg,
    checkpoint_columns,
    enumerate_checkpoints,
    index_checkpoints,
)
from repro.lang.parser import parse
from repro.lang.programs import load_program, program_names


def assert_matches_enumeration(cfg):
    indexing = index_checkpoints(cfg)
    enumeration = enumerate_checkpoints(cfg)
    assert indexing.balanced == enumeration.balanced
    assert indexing.path_counts == tuple(
        sorted({len(seq) for seq in enumeration.per_path})
    )
    if enumeration.balanced:
        assert indexing.depth == enumeration.depth
        assert indexing.columns == enumeration.columns


class TestAgainstEnumeration:
    @pytest.mark.parametrize("name", program_names())
    def test_shipped_programs(self, name):
        assert_matches_enumeration(build_cfg(load_program(name)))

    @pytest.mark.parametrize("branches", (1, 3, 6, 10))
    def test_branchy_programs(self, branches):
        assert_matches_enumeration(build_cfg(branchy_program(branches)))

    def test_unbalanced_program(self):
        source = (
            "program unbalanced():\n"
            "    x = init(myrank)\n"
            "    if x % 2 == 0:\n"
            "        checkpoint\n"
            "        x = x + 1\n"
            "    else:\n"
            "        x = x + 2\n"
        )
        cfg = build_cfg(parse(source))
        indexing = index_checkpoints(cfg)
        assert not indexing.balanced
        assert indexing.path_counts == (0, 1)
        assert_matches_enumeration(cfg)

    def test_exponential_input_stays_cheap(self):
        # 2^24 once-through paths: enumeration would blow the limit,
        # the DP decides it exactly.
        indexing = index_checkpoints(build_cfg(branchy_program(24)))
        assert indexing.balanced
        assert indexing.depth == 24
        assert indexing.path_counts == (24,)

    def test_indexing_type(self):
        indexing = index_checkpoints(build_cfg(load_program("jacobi")))
        assert isinstance(indexing, CheckpointIndexing)
        assert indexing.depth == len(indexing.columns)


class TestPathLimitDeprecation:
    def test_enumerate_warns_on_limit(self):
        cfg = build_cfg(load_program("jacobi"))
        with pytest.deprecated_call():
            enumerate_checkpoints(cfg, limit=1000)

    def test_checkpoint_columns_warns_on_limit(self):
        cfg = build_cfg(load_program("jacobi"))
        with pytest.deprecated_call():
            checkpoint_columns(cfg, limit=1000)

    def test_no_warning_without_limit(self, recwarn):
        cfg = build_cfg(load_program("jacobi"))
        enumerate_checkpoints(cfg)
        checkpoint_columns(cfg)
        deprecations = [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations == []

    def test_columns_match_indexing(self):
        cfg = build_cfg(load_program("jacobi"))
        assert checkpoint_columns(cfg) == index_checkpoints(cfg).columns
