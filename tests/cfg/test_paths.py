"""Path enumeration and checkpoint-column (S_i) tests."""

import pytest

from repro.cfg import build_cfg
from repro.cfg.paths import (
    acyclic_paths,
    checkpoint_columns,
    enumerate_checkpoints,
    find_path,
    once_through_successors,
    reachable_from,
)
from repro.errors import CFGError
from repro.lang.parser import parse
from repro.lang.programs import (
    jacobi,
    jacobi_odd_even,
    jacobi_plain,
    stencil_1d,
)


def body(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestReachability:
    def test_everything_reachable_from_entry(self, any_program):
        cfg = build_cfg(any_program)
        reachable = reachable_from(cfg, cfg.entry_id)
        assert reachable == frozenset(n.node_id for n in cfg.nodes())

    def test_exit_reaches_only_itself(self, any_program):
        cfg = build_cfg(any_program)
        assert reachable_from(cfg, cfg.exit_id) == frozenset({cfg.exit_id})

    def test_find_path_entry_to_exit(self, any_program):
        cfg = build_cfg(any_program)
        path = find_path(cfg, cfg.entry_id, cfg.exit_id)
        assert path is not None
        assert path[0] == cfg.entry_id and path[-1] == cfg.exit_id

    def test_find_path_none_backwards(self, any_program):
        cfg = build_cfg(any_program)
        assert find_path(cfg, cfg.exit_id, cfg.entry_id) is None


class TestOnceThroughDag:
    def test_dag_is_acyclic(self, any_program):
        cfg = build_cfg(any_program)
        succ = once_through_successors(cfg)
        seen: set[int] = set()
        done: set[int] = set()

        def visit(node):
            if node in done:
                return
            assert node not in seen, "cycle in once-through DAG"
            seen.add(node)
            for nxt in succ[node]:
                visit(nxt)
            seen.discard(node)
            done.add(node)

        visit(cfg.entry_id)

    def test_loop_body_is_traversed(self):
        cfg = build_cfg(body("while i < 2:\n    checkpoint\n    i = i + 1"))
        paths = acyclic_paths(cfg)
        checkpoint = cfg.checkpoint_nodes()[0]
        assert all(checkpoint.node_id in p for p in paths)

    def test_no_zero_trip_path(self):
        cfg = build_cfg(body("while i < 2:\n    x = 1\nz = 2"))
        paths = acyclic_paths(cfg)
        x_node = next(n for n in cfg.nodes() if n.label == "x = 1")
        assert all(x_node.node_id in p for p in paths)


class TestAcyclicPaths:
    def test_straight_line_single_path(self):
        cfg = build_cfg(body("a = 1\nb = 2"))
        assert len(acyclic_paths(cfg)) == 1

    def test_if_doubles_paths(self):
        cfg = build_cfg(body("if myrank == 0:\n    a = 1\nelse:\n    b = 2"))
        assert len(acyclic_paths(cfg)) == 2

    def test_sequential_ifs_multiply(self):
        cfg = build_cfg(
            body(
                "if myrank == 0:\n    a = 1\n"
                "if myrank == 1:\n    b = 2\n"
                "if myrank == 2:\n    c = 3"
            )
        )
        assert len(acyclic_paths(cfg)) == 8

    def test_paths_start_and_end_correctly(self, any_program):
        cfg = build_cfg(any_program)
        for path in acyclic_paths(cfg):
            assert path[0] == cfg.entry_id
            assert path[-1] == cfg.exit_id

    def test_limit_guard(self):
        cfg = build_cfg(stencil_1d())
        with pytest.raises(CFGError, match="paths"):
            acyclic_paths(cfg, limit=2)


class TestCheckpointEnumeration:
    def test_jacobi_singleton_column(self):
        enum = enumerate_checkpoints(build_cfg(jacobi()))
        assert enum.balanced
        assert enum.depth == 1
        assert len(enum.columns[0]) == 1

    def test_odd_even_two_member_column(self):
        enum = enumerate_checkpoints(build_cfg(jacobi_odd_even()))
        assert enum.balanced
        assert len(enum.columns[0]) == 2

    def test_plain_program_no_columns(self):
        enum = enumerate_checkpoints(build_cfg(jacobi_plain()))
        assert enum.balanced
        assert enum.depth == 0

    def test_unbalanced_detected(self):
        cfg = build_cfg(
            body("if myrank == 0:\n    checkpoint\nelse:\n    pass")
        )
        enum = enumerate_checkpoints(cfg)
        assert not enum.balanced

    def test_two_checkpoints_in_sequence(self):
        cfg = build_cfg(body("checkpoint\nx = 1\ncheckpoint"))
        enum = enumerate_checkpoints(cfg)
        assert enum.depth == 2
        assert len(enum.columns[0]) == 1
        assert len(enum.columns[1]) == 1
        assert enum.columns[0] != enum.columns[1]

    def test_columns_shorthand(self):
        assert checkpoint_columns(build_cfg(jacobi())) == enumerate_checkpoints(
            build_cfg(jacobi())
        ).columns

    def test_per_path_order_matches_path_order(self):
        cfg = build_cfg(body("checkpoint\nx = 1\ncheckpoint"))
        enum = enumerate_checkpoints(cfg)
        for path, checkpoints in zip(enum.paths, enum.per_path):
            positions = [path.index(c) for c in checkpoints]
            assert positions == sorted(positions)
