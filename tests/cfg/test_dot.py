"""DOT export smoke tests."""

from repro.cfg import build_cfg, to_dot
from repro.phases.matching import build_extended_cfg
from repro.lang.programs import jacobi, jacobi_odd_even


class TestDot:
    def test_plain_cfg_renders(self, any_program):
        text = to_dot(build_cfg(any_program))
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")

    def test_every_node_present(self):
        cfg = build_cfg(jacobi())
        text = to_dot(cfg)
        for node in cfg.nodes():
            assert f"n{node.node_id} " in text

    def test_back_edge_marked(self):
        text = to_dot(build_cfg(jacobi()))
        assert "back" in text

    def test_message_edges_dashed(self):
        ext = build_extended_cfg(jacobi_odd_even())
        text = to_dot(ext)
        assert "style=dashed" in text
        assert text.count("msg") == len(ext.message_edges)

    def test_checkpoint_shape(self):
        text = to_dot(build_cfg(jacobi()))
        assert "doublecircle" in text

    def test_labels_escaped(self):
        text = to_dot(build_cfg(jacobi()))
        # quotes inside labels must not break the dot syntax
        assert text.count('"') % 2 == 0
