"""Dominator, backward-edge, and natural-loop tests."""

from repro.cfg import build_cfg
from repro.cfg.dominators import (
    compute_dominators,
    dominates,
    find_back_edges,
    loop_headers,
    natural_loops,
)
from repro.lang.parser import parse
from repro.lang.programs import jacobi, master_worker


def body(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestDominators:
    def test_entry_dominates_everything(self, any_program):
        cfg = build_cfg(any_program)
        dom = compute_dominators(cfg)
        for node_id in dom:
            assert cfg.entry_id in dom[node_id]

    def test_every_node_dominates_itself(self, any_program):
        cfg = build_cfg(any_program)
        dom = compute_dominators(cfg)
        for node_id in dom:
            assert node_id in dom[node_id]

    def test_straight_line_chain(self):
        cfg = build_cfg(body("a = 1\nb = 2\nc = 3"))
        dom = compute_dominators(cfg)
        path = []
        current = cfg.entry_id
        while True:
            path.append(current)
            succ = cfg.successors(current)
            if not succ:
                break
            current = succ[0]
        for earlier, later in zip(path, path[1:]):
            assert dominates(dom, earlier, later)
            assert not dominates(dom, later, earlier)

    def test_branch_does_not_dominate_across_arms(self):
        cfg = build_cfg(body("if myrank == 0:\n    a = 1\nelse:\n    b = 2"))
        compute_nodes = [n for n in cfg.nodes() if n.label in ("a = 1", "b = 2")]
        dom = compute_dominators(cfg)
        a, b = compute_nodes
        assert not dominates(dom, a.node_id, b.node_id)
        assert not dominates(dom, b.node_id, a.node_id)

    def test_join_dominated_by_branch_not_arms(self):
        cfg = build_cfg(body("if myrank == 0:\n    a = 1\nelse:\n    b = 2"))
        from repro.cfg.nodes import NodeKind

        dom = compute_dominators(cfg)
        branch = cfg.nodes_of_kind(NodeKind.BRANCH)[0]
        join = cfg.nodes_of_kind(NodeKind.JOIN)[0]
        assert dominates(dom, branch.node_id, join.node_id)


class TestBackEdges:
    def test_while_produces_one_back_edge(self):
        cfg = build_cfg(body("while i < 3:\n    i = i + 1"))
        back = find_back_edges(cfg)
        assert len(back) == 1
        header = back[0].dst
        assert cfg.node(header).is_loop_header

    def test_straight_line_has_no_back_edges(self):
        cfg = build_cfg(body("a = 1\nb = 2"))
        assert find_back_edges(cfg) == []

    def test_nested_loops_back_edge_count(self):
        cfg = build_cfg(
            body("while i < 2:\n    while j < 2:\n        j = j + 1\n    i = i + 1")
        )
        assert len(find_back_edges(cfg)) == 2

    def test_master_worker_three_loops(self):
        cfg = build_cfg(master_worker())
        assert len(find_back_edges(cfg)) == 3

    def test_loop_headers(self):
        cfg = build_cfg(jacobi())
        headers = loop_headers(cfg)
        assert len(headers) == 1


class TestNaturalLoops:
    def test_loop_contains_header_and_tail(self):
        cfg = build_cfg(body("while i < 3:\n    i = i + 1"))
        loops = natural_loops(cfg)
        assert len(loops) == 1
        edge, nodes = next(iter(loops.items()))
        assert edge.dst in nodes and edge.src in nodes

    def test_loop_excludes_statements_after_loop(self):
        cfg = build_cfg(body("while i < 3:\n    i = i + 1\nz = 9"))
        loops = natural_loops(cfg)
        after = next(n for n in cfg.nodes() if n.label == "z = 9")
        for nodes in loops.values():
            assert after.node_id not in nodes

    def test_inner_loop_nested_in_outer(self):
        cfg = build_cfg(
            body("while i < 2:\n    while j < 2:\n        j = j + 1\n    i = i + 1")
        )
        loops = sorted(natural_loops(cfg).values(), key=len)
        inner, outer = loops
        assert inner < outer  # strict subset

    def test_jacobi_loop_contains_exchange(self):
        cfg = build_cfg(jacobi())
        loops = natural_loops(cfg)
        loop_nodes = next(iter(loops.values()))
        send_ids = {n.node_id for n in cfg.send_nodes()}
        assert send_ids <= loop_nodes
