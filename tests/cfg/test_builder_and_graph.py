"""CFG construction and graph data-structure tests."""

import pytest

from repro.cfg import CFG, NodeKind, build_cfg
from repro.cfg.builder import nodes_for_statement
from repro.cfg.graph import ExtendedCFG
from repro.errors import CFGError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.programs import jacobi, jacobi_odd_even


def body(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestGraphBasics:
    def test_single_entry_and_exit(self, any_program):
        cfg = build_cfg(any_program)
        assert len(cfg.nodes_of_kind(NodeKind.ENTRY)) == 1
        assert len(cfg.nodes_of_kind(NodeKind.EXIT)) == 1

    def test_duplicate_entry_rejected(self):
        cfg = CFG()
        cfg.add_node(NodeKind.ENTRY)
        with pytest.raises(CFGError, match="entry"):
            cfg.add_node(NodeKind.ENTRY)

    def test_edge_endpoints_must_exist(self):
        cfg = CFG()
        node = cfg.add_node(NodeKind.ENTRY)
        with pytest.raises(CFGError):
            cfg.add_edge(node.node_id, 99)

    def test_unknown_node_lookup(self):
        cfg = CFG()
        with pytest.raises(CFGError, match="unknown node"):
            cfg.node(5)

    def test_successors_and_predecessors_inverse(self, jacobi_program):
        cfg = build_cfg(jacobi_program)
        for edge in cfg.edges():
            assert edge.dst in cfg.successors(edge.src)
            assert edge.src in cfg.predecessors(edge.dst)

    def test_contains_and_len(self, jacobi_program):
        cfg = build_cfg(jacobi_program)
        assert cfg.entry_id in cfg
        assert len(cfg) == sum(1 for _ in cfg.nodes())


class TestStatementNodes:
    def test_jacobi_node_inventory(self):
        cfg = build_cfg(jacobi())
        assert len(cfg.send_nodes()) == 2
        assert len(cfg.recv_nodes()) == 2
        assert len(cfg.checkpoint_nodes()) == 1

    def test_send_recv_carry_statements(self):
        cfg = build_cfg(jacobi())
        for node in cfg.send_nodes():
            assert isinstance(node.stmt, ast.Send)
        for node in cfg.recv_nodes():
            assert isinstance(node.stmt, ast.Recv)

    def test_branch_for_if(self):
        cfg = build_cfg(body("if myrank == 0:\n    x = 1\nelse:\n    x = 2"))
        branches = cfg.nodes_of_kind(NodeKind.BRANCH)
        assert len(branches) == 1
        labels = {e.label for e in cfg.out_edges(branches[0].node_id)}
        assert labels == {"true", "false"}

    def test_join_after_if(self):
        cfg = build_cfg(body("if myrank == 0:\n    x = 1\nelse:\n    x = 2"))
        assert len(cfg.nodes_of_kind(NodeKind.JOIN)) == 1

    def test_while_header_is_loop_header(self):
        cfg = build_cfg(body("while i < 3:\n    i = i + 1"))
        headers = [n for n in cfg.nodes() if n.is_loop_header]
        assert len(headers) == 1
        assert headers[0].kind is NodeKind.BRANCH

    def test_for_lowered_like_while(self):
        cfg = build_cfg(body("for k in range(3):\n    compute(k)"))
        headers = [n for n in cfg.nodes() if n.is_loop_header]
        assert len(headers) == 1

    def test_nodes_for_statement(self):
        program = jacobi()
        cfg = build_cfg(program)
        checkpoint_stmt = next(
            n for n in ast.walk(program) if isinstance(n, ast.Checkpoint)
        )
        nodes = nodes_for_statement(cfg, checkpoint_stmt)
        assert len(nodes) == 1
        assert nodes[0].kind is NodeKind.CHECKPOINT


class TestBcastLowering:
    def test_bcast_creates_collective_pair(self):
        cfg = build_cfg(body("v = bcast(0, x)"))
        sends = cfg.send_nodes()
        recvs = cfg.recv_nodes()
        assert len(sends) == 1 and sends[0].collective
        assert len(recvs) == 1 and recvs[0].collective

    def test_bcast_branch_marked(self):
        cfg = build_cfg(body("v = bcast(0, x)"))
        branch = cfg.nodes_of_kind(NodeKind.BRANCH)[0]
        assert branch.attrs.get("bcast") is True

    def test_bcast_paths_rejoin(self):
        cfg = build_cfg(body("v = bcast(0, x)\ny = 1"))
        joins = cfg.nodes_of_kind(NodeKind.JOIN)
        assert len(joins) == 1


class TestExtendedCFG:
    def test_message_edge_requires_send_and_recv(self):
        cfg = build_cfg(jacobi())
        ext = ExtendedCFG(cfg)
        send = cfg.send_nodes()[0]
        recv = cfg.recv_nodes()[0]
        ext.add_message_edge(send.node_id, recv.node_id)
        assert ext.matches_for_recv(recv.node_id) == [send.node_id]
        assert ext.matches_for_send(send.node_id) == [recv.node_id]

    def test_message_edge_rejects_wrong_kinds(self):
        cfg = build_cfg(jacobi())
        ext = ExtendedCFG(cfg)
        with pytest.raises(CFGError):
            ext.add_message_edge(cfg.entry_id, cfg.recv_nodes()[0].node_id)
        with pytest.raises(CFGError):
            ext.add_message_edge(cfg.send_nodes()[0].node_id, cfg.exit_id)

    def test_message_edge_idempotent(self):
        cfg = build_cfg(jacobi())
        ext = ExtendedCFG(cfg)
        send, recv = cfg.send_nodes()[0], cfg.recv_nodes()[0]
        ext.add_message_edge(send.node_id, recv.node_id)
        ext.add_message_edge(send.node_id, recv.node_id)
        assert len(ext.message_edges) == 1

    def test_find_path_through_message_edge(self):
        cfg = build_cfg(jacobi_odd_even())
        ext = ExtendedCFG(cfg)
        # even branch: checkpoint, send, recv / odd: recv, send, checkpoint
        sends = cfg.send_nodes()
        recvs = cfg.recv_nodes()
        ext.add_message_edge(sends[0].node_id, recvs[1].node_id)
        checkpoints = cfg.checkpoint_nodes()
        path = ext.find_path(checkpoints[0].node_id, checkpoints[1].node_id)
        assert path is not None
        assert path[0] == checkpoints[0].node_id
        assert path[-1] == checkpoints[1].node_id

    def test_find_path_respects_excluded_edges(self):
        cfg = build_cfg(body("while i < 2:\n    checkpoint\n    i = i + 1"))
        from repro.cfg.dominators import find_back_edges

        back = [(e.src, e.dst) for e in find_back_edges(cfg)]
        ext = ExtendedCFG(cfg)
        checkpoint = cfg.checkpoint_nodes()[0]
        # Self-path exists only through the back edge.
        assert ext.find_path(checkpoint.node_id, checkpoint.node_id) is not None
        assert (
            ext.find_path(
                checkpoint.node_id, checkpoint.node_id, exclude_back_edges=back
            )
            is None
        )

    def test_find_path_none_when_unreachable(self):
        cfg = build_cfg(jacobi())
        ext = ExtendedCFG(cfg)
        assert ext.find_path(cfg.exit_id, cfg.entry_id) is None

    def test_path_edges_are_real(self):
        cfg = build_cfg(jacobi_odd_even())
        ext = ExtendedCFG(cfg)
        path = ext.find_path(cfg.entry_id, cfg.exit_id)
        for src, dst in zip(path, path[1:]):
            assert dst in ext.successors(src)
