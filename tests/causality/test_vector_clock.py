"""Vector-clock tests, including order-theoretic properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causality.vector_clock import VectorClock

clocks = st.builds(
    VectorClock,
    st.tuples(*[st.integers(min_value=0, max_value=5)] * 3),
)


class TestBasics:
    def test_zero(self):
        clock = VectorClock.zero(4)
        assert clock.components == (0, 0, 0, 0)
        assert len(clock) == 4

    def test_zero_requires_positive_size(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_tick_increments_own_component(self):
        clock = VectorClock.zero(3).tick(1)
        assert clock.components == (0, 1, 0)

    def test_tick_returns_new_clock(self):
        original = VectorClock.zero(3)
        original.tick(0)
        assert original.components == (0, 0, 0)

    def test_merge_componentwise_max(self):
        a = VectorClock((3, 0, 1))
        b = VectorClock((1, 2, 1))
        assert a.merge(b).components == (3, 2, 1)

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            VectorClock((1, 2)).merge(VectorClock((1, 2, 3)))

    def test_getitem(self):
        assert VectorClock((4, 5, 6))[1] == 5


class TestHappenedBefore:
    def test_strictly_smaller(self):
        assert VectorClock((1, 0)).happened_before(VectorClock((1, 1)))

    def test_equal_not_ordered(self):
        clock = VectorClock((2, 2))
        assert not clock.happened_before(VectorClock((2, 2)))

    def test_concurrent(self):
        a = VectorClock((1, 0))
        b = VectorClock((0, 1))
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            VectorClock((1,)).happened_before(VectorClock((1, 2)))


class TestOrderProperties:
    @settings(max_examples=100, deadline=None)
    @given(a=clocks, b=clocks)
    def test_antisymmetry(self, a, b):
        assert not (a.happened_before(b) and b.happened_before(a))

    @settings(max_examples=100, deadline=None)
    @given(a=clocks, b=clocks, c=clocks)
    def test_transitivity(self, a, b, c):
        if a.happened_before(b) and b.happened_before(c):
            assert a.happened_before(c)

    @settings(max_examples=100, deadline=None)
    @given(a=clocks)
    def test_irreflexivity(self, a):
        assert not a.happened_before(a)

    @settings(max_examples=100, deadline=None)
    @given(a=clocks, b=clocks)
    def test_trichotomy_exhaustive(self, a, b):
        relations = [
            a.happened_before(b),
            b.happened_before(a),
            a.concurrent_with(b),
            a.components == b.components,
        ]
        assert any(relations)

    @settings(max_examples=100, deadline=None)
    @given(a=clocks, b=clocks)
    def test_merge_is_upper_bound(self, a, b):
        merged = a.merge(b)
        for source in (a, b):
            assert not merged.happened_before(source)
