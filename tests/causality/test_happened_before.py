"""Happened-before tests: vector clocks vs. explicit graph reachability.

The key property: on traces produced by the real simulator, the
clock-based answer and the from-first-principles graph answer must
agree for every event pair. This validates the engine's clock
maintenance end to end.
"""

import itertools

import pytest

from repro.causality.happened_before import HappenedBeforeGraph, happened_before
from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock
from repro.lang.programs import jacobi, master_worker, token_ring
from repro.runtime import Simulation


def event(kind, process, seq, clock, message_id=None):
    return TraceEvent(
        kind=kind,
        process=process,
        seq=seq,
        time=float(seq),
        clock=VectorClock(clock),
        message_id=message_id,
        peer=None,
    )


class TestManualTraces:
    def test_process_order(self):
        a = event(EventKind.COMPUTE, 0, 0, (1, 0))
        b = event(EventKind.COMPUTE, 0, 1, (2, 0))
        assert happened_before(a, b)
        assert not happened_before(b, a)

    def test_message_order(self):
        send = event(EventKind.SEND, 0, 0, (1, 0), message_id=1)
        recv = event(EventKind.RECV, 1, 0, (1, 1), message_id=1)
        assert happened_before(send, recv)

    def test_concurrent_events(self):
        a = event(EventKind.COMPUTE, 0, 0, (1, 0))
        b = event(EventKind.COMPUTE, 1, 0, (0, 1))
        assert not happened_before(a, b)
        assert not happened_before(b, a)

    def test_graph_agrees_on_manual_trace(self):
        send = event(EventKind.SEND, 0, 0, (1, 0), message_id=7)
        recv = event(EventKind.RECV, 1, 0, (1, 1), message_id=7)
        later = event(EventKind.COMPUTE, 1, 1, (1, 2))
        graph = HappenedBeforeGraph([send, recv, later])
        assert graph.reaches(send, recv)
        assert graph.reaches(send, later)
        assert not graph.reaches(later, send)


@pytest.mark.parametrize(
    "make,n",
    [(jacobi, 4), (master_worker, 3), (token_ring, 4)],
)
class TestSimulatedTraces:
    def test_clock_and_graph_agree(self, make, n):
        trace = Simulation(make(), n, params={"steps": 3}).run().trace
        events = trace.events
        graph = HappenedBeforeGraph(events)
        for a, b in itertools.combinations(events, 2):
            assert happened_before(a, b) == graph.reaches(a, b), (a, b)

    def test_send_always_before_matching_recv(self, make, n):
        trace = Simulation(make(), n, params={"steps": 3}).run().trace
        sends = {
            e.message_id: e for e in trace.events if e.kind is EventKind.SEND
        }
        for recv in trace.events:
            if recv.kind is EventKind.RECV:
                assert happened_before(sends[recv.message_id], recv)

    def test_local_history_totally_ordered(self, make, n):
        trace = Simulation(make(), n, params={"steps": 3}).run().trace
        for rank in range(n):
            history = trace.events_for(rank)
            for a, b in zip(history, history[1:]):
                assert happened_before(a, b)
