"""Cut consistency and straight-cut tests (Definitions 2.1-2.3)."""

import pytest

from repro.causality.cuts import (
    CheckpointCut,
    cut_is_consistent,
    latest_straight_cut,
    orphan_messages,
    straight_cut,
)
from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock
from repro.errors import RecoveryError
from repro.lang import ast_nodes as ast
from repro.lang.programs import jacobi, jacobi_odd_even
from repro.runtime import Simulation


def checkpoint(process, seq, clock, number=1, stmt_id=None):
    return TraceEvent(
        kind=EventKind.CHECKPOINT,
        process=process,
        seq=seq,
        time=float(seq),
        clock=VectorClock(clock),
        checkpoint_number=number,
        stmt_id=stmt_id,
    )


class TestCutValidity:
    def test_one_member_per_process_enforced(self):
        with pytest.raises(RecoveryError, match="one checkpoint per process"):
            CheckpointCut(
                members=(checkpoint(0, 0, (1, 0)), checkpoint(0, 1, (2, 0)))
            )

    def test_non_checkpoint_member_rejected(self):
        bad = TraceEvent(
            kind=EventKind.SEND,
            process=0,
            seq=0,
            time=0.0,
            clock=VectorClock((1, 0)),
        )
        with pytest.raises(RecoveryError, match="not a checkpoint"):
            CheckpointCut(members=(bad,))

    def test_member_for(self):
        cut = CheckpointCut(
            members=(checkpoint(0, 0, (1, 0)), checkpoint(1, 0, (0, 1)))
        )
        assert cut.member_for(1).process == 1
        with pytest.raises(RecoveryError):
            cut.member_for(7)


class TestConsistency:
    def test_concurrent_cut_consistent(self):
        cut = CheckpointCut(
            members=(checkpoint(0, 0, (1, 0)), checkpoint(1, 0, (0, 1)))
        )
        assert cut_is_consistent(cut)

    def test_ordered_cut_inconsistent(self):
        cut = CheckpointCut(
            members=(checkpoint(0, 0, (1, 0)), checkpoint(1, 5, (1, 3)))
        )
        assert not cut_is_consistent(cut)


class TestStraightCuts:
    def test_index_must_be_positive(self):
        with pytest.raises(RecoveryError):
            straight_cut([], 0)

    def test_missing_checkpoint_returns_none(self):
        events = [checkpoint(0, 0, (1, 0))]
        assert straight_cut(events, 1, processes=[0, 1]) is None

    def test_dynamic_numbering_selects_ith(self):
        events = [
            checkpoint(0, 0, (1, 0), number=1),
            checkpoint(0, 5, (5, 0), number=2),
            checkpoint(1, 0, (0, 1), number=1),
        ]
        cut = straight_cut(events, 1, processes=[0, 1])
        assert cut.member_for(0).seq == 0

    def test_simulated_jacobi_all_cuts_consistent(self):
        trace = Simulation(jacobi(), 4, params={"steps": 4}).run().trace
        for index in range(1, trace.max_straight_cut_index() + 1):
            cut = trace.straight_cut(index)
            assert cut_is_consistent(cut), index

    def test_simulated_odd_even_has_inconsistent_cut(self):
        trace = Simulation(jacobi_odd_even(), 4, params={"steps": 4}).run().trace
        assert not trace.all_straight_cuts_consistent()


class TestLatestStraightCut:
    def test_latest_instances_selected(self):
        program = jacobi()
        stmt = next(
            n for n in ast.walk(program) if isinstance(n, ast.Checkpoint)
        )
        trace = Simulation(program, 4, params={"steps": 3}).run().trace
        cut = latest_straight_cut(
            trace.events,
            {1: frozenset({stmt.node_id})},
            1,
            processes=list(range(4)),
        )
        assert cut is not None
        # latest instance = the 3rd (last) iteration's checkpoint
        for member in cut.members:
            assert member.checkpoint_number == 3

    def test_unknown_index_raises(self):
        with pytest.raises(RecoveryError):
            latest_straight_cut([], {}, 1, processes=[0])


class TestOrphanMessages:
    def test_consistent_cut_has_no_orphans(self):
        trace = Simulation(jacobi(), 4, params={"steps": 4}).run().trace
        for index in range(1, trace.max_straight_cut_index() + 1):
            assert orphan_messages(trace.events, trace.straight_cut(index)) == []

    def test_inconsistent_cut_has_orphans(self):
        trace = Simulation(jacobi_odd_even(), 4, params={"steps": 4}).run().trace
        found = False
        for index in range(1, trace.max_straight_cut_index() + 1):
            cut = trace.straight_cut(index)
            if not cut_is_consistent(cut):
                orphans = orphan_messages(trace.events, cut)
                assert orphans, f"inconsistent R_{index} without orphan witness"
                for send, recv in orphans:
                    assert send.message_id == recv.message_id
                found = True
        assert found

    def test_orphan_iff_inconsistent_on_straight_cuts(self):
        """On exchange traces, the hb criterion and the orphan-message
        criterion agree — two independent consistency definitions."""
        for make in (jacobi, jacobi_odd_even):
            trace = Simulation(make(), 4, params={"steps": 4}).run().trace
            for index in range(1, trace.max_straight_cut_index() + 1):
                cut = trace.straight_cut(index)
                has_orphans = bool(orphan_messages(trace.events, cut))
                assert has_orphans == (not cut_is_consistent(cut))
