"""Zigzag-path (Netzer-Xu) tests, including the theorem itself.

The headline test validates the Netzer-Xu characterisation against a
brute-force search over boundary-augmented cuts on real simulated
traces — two completely independent implementations of "can these two
checkpoints belong to a consistent snapshot?".
"""

import itertools

import pytest

from repro.causality.cuts import (
    CheckpointCut,
    checkpoints_by_process,
    cut_is_consistent,
)
from repro.causality.records import EventKind, TraceEvent
from repro.causality.vector_clock import VectorClock
from repro.causality.zigzag import ZigzagAnalysis
from repro.lang.programs import jacobi, jacobi_odd_even, token_ring
from repro.runtime import Simulation


def event(kind, process, seq, clock, message_id=None, number=None):
    return TraceEvent(
        kind=kind,
        process=process,
        seq=seq,
        time=float(seq),
        clock=VectorClock(clock),
        message_id=message_id,
        checkpoint_number=number,
    )


def boundary_augmented_histories(events, n):
    """Per-process checkpoint lists extended with virtual initial and
    final checkpoints, as the Netzer-Xu model assumes."""
    grouped = checkpoints_by_process(events)
    per_process_events = {}
    for rank in range(n):
        history = [e for e in events if e.process == rank]
        last_seq = history[-1].seq if history else -1
        last_clock = history[-1].clock if history else VectorClock.zero(n)
        initial = event(
            EventKind.CHECKPOINT, rank, -1,
            tuple(1 if i == rank else 0 for i in range(n)), number=0,
        )
        final = TraceEvent(
            kind=EventKind.CHECKPOINT,
            process=rank,
            seq=last_seq + 1,
            time=1e9,
            clock=last_clock.tick(rank),
            checkpoint_number=10_000,
        )
        per_process_events[rank] = [initial, *grouped.get(rank, []), final]
    return per_process_events


def brute_force_pair_consistent(events, n, a_event, b_event):
    """Exhaustive search: does ANY consistent cut contain both?"""
    histories = boundary_augmented_histories(events, n)
    other_ranks = [r for r in range(n) if r not in (a_event.process, b_event.process)]
    choices = [histories[r] for r in other_ranks]
    for combo in itertools.product(*choices):
        members = (a_event, b_event, *combo)
        if cut_is_consistent(CheckpointCut(members=members)):
            return True
    return False


class TestHandCraftedZigzag:
    """The canonical 3-process example: m1 from P0 received by P1 after
    P1 sent m2 to P2 — a zigzag from P0's checkpoint to P2's even
    though no causal path connects them."""

    def _trace(self):
        return [
            event(EventKind.CHECKPOINT, 0, 0, (1, 0, 0), number=1),   # A
            event(EventKind.SEND, 0, 1, (2, 0, 0), message_id=1),     # m1
            event(EventKind.SEND, 1, 0, (0, 1, 0), message_id=2),     # m2 (before recv m1)
            event(EventKind.RECV, 1, 1, (2, 2, 0), message_id=1),
            event(EventKind.RECV, 2, 0, (0, 1, 1), message_id=2),
            event(EventKind.CHECKPOINT, 2, 1, (0, 1, 2), number=1),   # B
        ]

    def test_zigzag_exists_without_causal_path(self):
        trace = self._trace()
        analysis = ZigzagAnalysis(trace)
        assert analysis.zigzag_path_exists((0, 1), (2, 1))
        # yet no happened-before: A's clock (1,0,0) vs B's (0,1,2)
        a, b = trace[0], trace[-1]
        assert not a.clock.happened_before(b.clock)
        assert not b.clock.happened_before(a.clock)

    def test_pair_excluded_from_every_snapshot(self):
        """The zigzag makes {A, B} impossible: P1's member must either
        orphan m2 (if before the send) wait — the brute force agrees."""
        trace = self._trace()
        a, b = trace[0], trace[-1]
        assert not brute_force_pair_consistent(trace, 3, a, b)

    def test_no_reverse_zigzag(self):
        analysis = ZigzagAnalysis(self._trace())
        assert not analysis.zigzag_path_exists((2, 1), (0, 1))

    def test_no_cycles_here(self):
        analysis = ZigzagAnalysis(self._trace())
        assert analysis.useless_checkpoints() == []


class TestNetzerXuTheorem:
    """zz-consistency ⟺ membership in some boundary-augmented
    consistent cut, over every cross-process checkpoint pair of real
    simulated traces."""

    @pytest.mark.parametrize(
        "make,n", [(jacobi, 4), (jacobi_odd_even, 4), (token_ring, 3)]
    )
    def test_theorem_on_simulated_traces(self, make, n):
        trace = Simulation(make(), n, params={"steps": 3}).run().trace
        analysis = ZigzagAnalysis(trace.events)
        grouped = checkpoints_by_process(trace.events)
        checkpoints = [e for history in grouped.values() for e in history]
        pairs_checked = 0
        for a, b in itertools.combinations(checkpoints, 2):
            if a.process == b.process:
                continue
            zz = analysis.zz_consistent(
                (a.process, a.checkpoint_number),
                (b.process, b.checkpoint_number),
            )
            brute = brute_force_pair_consistent(trace.events, n, a, b)
            assert zz == brute, (
                make.__name__,
                (a.process, a.checkpoint_number),
                (b.process, b.checkpoint_number),
            )
            pairs_checked += 1
        assert pairs_checked > 10

    def test_safe_program_has_no_useless_checkpoints(self):
        trace = Simulation(jacobi(), 4, params={"steps": 3}).run().trace
        assert ZigzagAnalysis(trace.events).useless_checkpoints() == []


class TestUselessCheckpoints:
    """A mid-exchange checkpoint opposite a checkpoint-free partner is
    the canonical useless checkpoint: a zigzag cycle runs through it
    (reply sent after it, request received before it, both falling in
    one interval of the partner)."""

    USELESS_DEMO = (
        "program useless_demo():\n"
        "    x = init(myrank)\n"
        "    i = 0\n"
        "    while i < steps:\n"
        "        if myrank == 0:\n"
        "            send(1, x)\n"
        "            x = recv(1)\n"
        "        else:\n"
        "            y = recv(0)\n"
        "            checkpoint\n"
        "            send(0, relax(y, i))\n"
        "        i = i + 1\n"
    )

    def _trace(self):
        from repro.lang.parser import parse

        return Simulation(
            parse(self.USELESS_DEMO), 2, params={"steps": 3}
        ).run().trace

    def test_all_mid_exchange_checkpoints_useless(self):
        trace = self._trace()
        analysis = ZigzagAnalysis(trace.events)
        useless = analysis.useless_checkpoints()
        assert useless == [(1, 1), (1, 2), (1, 3)]

    def test_brute_force_confirms_uselessness(self):
        trace = self._trace()
        grouped = checkpoints_by_process(trace.events)
        victim = grouped[1][0]
        histories = boundary_augmented_histories(trace.events, 2)
        # no choice of P0 checkpoint (incl. virtual boundaries) makes a
        # consistent cut with the victim
        for partner in histories[0]:
            cut = CheckpointCut(members=(victim, partner))
            assert not cut_is_consistent(cut)

    def test_phase3_repair_eliminates_useless_checkpoints(self):
        from repro.lang.parser import parse
        from repro.phases import ensure_recovery_lines

        repaired = ensure_recovery_lines(parse(self.USELESS_DEMO)).program
        trace = Simulation(repaired, 2, params={"steps": 3}).run().trace
        assert ZigzagAnalysis(trace.events).useless_checkpoints() == []
        assert trace.all_straight_cuts_consistent()
