"""Rollback-dependency graph and domino-effect tests."""

from repro.causality.cuts import cut_is_consistent
from repro.causality.records import EventKind, TraceEvent
from repro.causality.rollback_graph import (
    build_rollback_graph,
    max_consistent_cut,
    max_consistent_positions,
)
from repro.causality.vector_clock import VectorClock
from repro.lang.programs import jacobi
from repro.runtime import Simulation


def make_event(kind, process, seq, clock, message_id=None):
    return TraceEvent(
        kind=kind,
        process=process,
        seq=seq,
        time=float(seq),
        clock=VectorClock(clock),
        message_id=message_id,
        checkpoint_number=seq if kind is EventKind.CHECKPOINT else None,
    )


class TestPositionsFixpoint:
    def test_concurrent_latest_kept(self):
        positions, domino = max_consistent_positions(
            {0: [VectorClock((1, 0))], 1: [VectorClock((0, 1))]}
        )
        assert positions == {0: 0, 1: 0}
        assert domino == 0

    def test_single_rollback(self):
        positions, domino = max_consistent_positions(
            {
                0: [VectorClock((1, 0))],
                1: [VectorClock((0, 1)), VectorClock((2, 3))],
            }
        )
        # P1's latest (2,3) has P0's (1,0) in its past: P1 rolls back.
        assert positions == {0: 0, 1: 0}
        assert domino == 1

    def test_cascading_domino(self):
        # chain: each later checkpoint depends on the previous process's
        positions, domino = max_consistent_positions(
            {
                0: [VectorClock((1, 0, 0)), VectorClock((5, 0, 0))],
                1: [VectorClock((0, 1, 0)), VectorClock((5, 6, 0))],
                2: [VectorClock((0, 0, 1)), VectorClock((5, 6, 7))],
            }
        )
        # 2's latest depends on 1's latest which depends on 0's latest —
        # but all three latest are mutually ordered, so they cascade.
        assert domino >= 2
        assert positions[2] == 0

    def test_all_roll_to_floor(self):
        positions, _ = max_consistent_positions(
            {
                0: [VectorClock((2, 1))],
                1: [VectorClock((1, 2))],
            }
        )
        # the two singletons are mutually concurrent? (2,1) vs (1,2): yes
        assert positions == {0: 0, 1: 0}


class TestRollbackGraph:
    def test_edges_from_message_intervals(self):
        events = [
            make_event(EventKind.CHECKPOINT, 0, 0, (1, 0)),
            make_event(EventKind.SEND, 0, 1, (2, 0), message_id=1),
            make_event(EventKind.RECV, 1, 0, (2, 1), message_id=1),
            make_event(EventKind.CHECKPOINT, 1, 1, (2, 2)),
        ]
        graph = build_rollback_graph(events)
        # send in interval (0,1) -> recv in interval (1,0)
        assert (1, 0) in graph[(0, 1)]

    def test_simulated_trace_graph_nonempty(self):
        trace = Simulation(jacobi(), 4, params={"steps": 3}).run().trace
        graph = build_rollback_graph(trace.events)
        assert graph


class TestMaxConsistentCut:
    def test_latest_checkpoints_kept_when_consistent(self):
        trace = Simulation(jacobi(), 4, params={"steps": 3}).run().trace
        analysis = max_consistent_cut(trace.events, list(range(4)))
        assert analysis.cut is not None
        assert cut_is_consistent(analysis.cut)

    def test_result_is_always_consistent(self):
        from repro.lang.programs import jacobi_odd_even

        trace = Simulation(jacobi_odd_even(), 4, params={"steps": 3}).run().trace
        analysis = max_consistent_cut(trace.events, list(range(4)))
        if analysis.cut is not None:
            assert cut_is_consistent(analysis.cut)

    def test_rollback_counts_reported(self):
        events = [
            make_event(EventKind.CHECKPOINT, 0, 0, (1, 0)),
            make_event(EventKind.CHECKPOINT, 1, 0, (0, 1)),
            make_event(EventKind.CHECKPOINT, 1, 1, (3, 2)),
        ]
        analysis = max_consistent_cut(events, [0, 1])
        assert analysis.rollbacks[1] == 1
        assert analysis.total_rollback == 1
        assert analysis.domino_steps == 1
