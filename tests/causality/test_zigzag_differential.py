"""Differential tests: bitset zigzag closure vs a naive hop walk.

:class:`~repro.causality.zigzag.ZigzagAnalysis` answers reachability
queries from per-hop transitive-closure bitmasks built once over the
SCC condensation of the hop graph. These tests re-derive every answer
with the obvious per-query DFS over the same hop adjacency — the shape
of the implementation the bitmasks replaced — on real simulated traces.
"""

import pytest

from repro.causality.cuts import checkpoints_by_process
from repro.causality.zigzag import ZigzagAnalysis
from repro.lang.programs import jacobi, jacobi_odd_even, token_ring
from repro.runtime import Simulation


def naive_path_exists(analysis, source, target):
    """Per-query DFS over the hop graph (the pre-bitset semantics)."""
    src_proc, src_number = source
    dst_proc, dst_number = target
    hops = analysis._hops
    starts = [
        hop for hop in hops
        if hop.sender == src_proc and hop.send_interval >= src_number
    ]
    seen = set()
    stack = list(starts)
    reached = []
    while stack:
        hop = stack.pop()
        if id(hop) in seen:
            continue
        seen.add(id(hop))
        reached.append(hop)
        for nxt in hops:
            if (
                nxt.sender == hop.receiver
                and nxt.send_interval >= hop.recv_interval
            ):
                stack.append(nxt)
    return any(
        hop.receiver == dst_proc and hop.recv_interval < dst_number
        for hop in reached
    )


def simulated_trace(make_program, n):
    result = Simulation(make_program(), n, params={"steps": 4}).run()
    return result.trace.events


@pytest.mark.parametrize(
    "make_program,n",
    [(jacobi, 4), (jacobi_odd_even, 4), (token_ring, 5)],
    ids=["jacobi", "jacobi_odd_even", "token_ring"],
)
class TestAgainstNaiveWalk:
    def checkpoints(self, events):
        return [
            (process, event.checkpoint_number)
            for process, history in sorted(
                checkpoints_by_process(events).items()
            )
            for event in history
        ]

    def test_all_pairs_agree(self, make_program, n):
        events = simulated_trace(make_program, n)
        analysis = ZigzagAnalysis(events)
        checkpoints = self.checkpoints(events)
        assert checkpoints, "trace has no checkpoints to compare"
        for a in checkpoints:
            for b in checkpoints:
                assert analysis.zigzag_path_exists(a, b) == (
                    naive_path_exists(analysis, a, b)
                ), (a, b)

    def test_closure_from_matches_naive_reach(self, make_program, n):
        events = simulated_trace(make_program, n)
        analysis = ZigzagAnalysis(events)
        for start in analysis._hops:
            expected = {id(start)}
            stack = [start]
            while stack:
                hop = stack.pop()
                for nxt in analysis._hops:
                    if (
                        nxt.sender == hop.receiver
                        and nxt.send_interval >= hop.recv_interval
                        and id(nxt) not in expected
                    ):
                        expected.add(id(nxt))
                        stack.append(nxt)
            assert analysis._closure_from(start) == frozenset(expected)
