"""Empirical Lemma 3.1: every communication that actually happens in an
execution corresponds to a message edge Algorithm 3.1 predicted.

The lemma guarantees the true sender is among the matches; here we
check it operationally: simulate a program, pair up each message's
originating send/receive statements (via trace provenance), map them to
CFG nodes, and assert the extended CFG contains that exact message
edge. Run over the shipped programs and both generated families.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causality.records import EventKind
from repro.cfg.nodes import NodeKind
from repro.lang.generator import generate_exchange_program, generate_ring_program
from repro.lang.programs import default_params, load_program, program_names
from repro.phases.matching import build_extended_cfg
from repro.runtime import Simulation


def observed_statement_pairs(trace):
    """(send stmt id, recv stmt id) pairs of every delivered message."""
    sends = {
        e.message_id: e for e in trace.events if e.kind is EventKind.SEND
    }
    pairs = set()
    for event in trace.events:
        if event.kind is EventKind.RECV and event.message_id in sends:
            pairs.add((sends[event.message_id].stmt_id, event.stmt_id))
    return pairs


def predicted_statement_pairs(program):
    """(send stmt id, recv stmt id) pairs of the extended CFG's edges."""
    ext = build_extended_cfg(program)
    pairs = set()
    for edge in ext.message_edges:
        send_stmt = ext.cfg.node(edge.send_id).stmt
        recv_stmt = ext.cfg.node(edge.recv_id).stmt
        pairs.add((send_stmt.node_id, recv_stmt.node_id))
    # A collective statement is both endpoints of its own edge.
    return pairs


def assert_observed_subset_of_predicted(program, n, params):
    trace = Simulation(program, n, params=params).run().trace
    observed = observed_statement_pairs(trace)
    predicted = predicted_statement_pairs(program)
    assert observed, "workload exchanged no messages"
    missing = observed - predicted
    assert not missing, f"unpredicted communications: {missing}"


@pytest.mark.parametrize("name", [n for n in program_names()
                                  if n != "jacobi_plain"])
def test_lemma31_on_shipped_programs(name):
    program = load_program(name)
    assert_observed_subset_of_predicted(
        program, 4, default_params(name, steps=3)
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=30_000),
    position=st.sampled_from(["head", "split"]),
)
def test_lemma31_on_exchange_family(seed, position):
    program = generate_exchange_program(seed, checkpoint_position=position)
    assert_observed_subset_of_predicted(program, 4, {"steps": 3})


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=30_000),
    n=st.sampled_from([3, 5]),
)
def test_lemma31_on_ring_family(seed, n):
    program = generate_ring_program(seed, checkpoint_position="head")
    assert_observed_subset_of_predicted(program, n, {"steps": 3})
