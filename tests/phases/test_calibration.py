"""Profiling-based cost-model calibration tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.programs import jacobi_plain
from repro.phases.calibration import calibrate_cost_model, calibrated_transform
from repro.phases.insertion import CostModel
from repro.runtime import Simulation


class TestCalibration:
    def test_delay_comes_from_profile(self):
        report = calibrate_cost_model(
            jacobi_plain(), 4, params={"steps": 20}, profile_steps=3
        )
        assert report.messages_observed > 0
        assert report.cost_model.message_delay == pytest.approx(
            report.estimator.estimate
        )

    def test_profile_uses_few_steps(self):
        report = calibrate_cost_model(
            jacobi_plain(), 4, params={"steps": 1000}, profile_steps=2
        )
        # 2 iterations of 4 processes: far fewer messages than 1000 would yield
        assert report.messages_observed <= 16

    def test_other_model_knobs_preserved(self):
        base = CostModel(checkpoint_overhead=7.0, failure_rate=0.003)
        report = calibrate_cost_model(
            jacobi_plain(), 4, params={"steps": 20}, base_model=base
        )
        assert report.cost_model.checkpoint_overhead == 7.0
        assert report.cost_model.failure_rate == 0.003

    def test_message_free_program_keeps_prior(self):
        program = parse(
            "program local():\n    compute(5)\n    compute(5)\n"
        )
        base = CostModel(message_delay=9.9)
        report = calibrate_cost_model(program, 2, base_model=base)
        assert report.messages_observed == 0
        assert report.cost_model.message_delay == 9.9

    def test_calibrated_delay_tracks_network(self):
        from repro.runtime import RuntimeCosts

        slow = calibrate_cost_model(
            jacobi_plain(), 4, params={"steps": 20},
            costs=RuntimeCosts(), profile_steps=4,
        )
        # same model, but profile on a slower network via engine seed /
        # latency comes through Simulation's default; emulate by feeding
        # a direct comparison through base_latency in Simulation:
        fast_run = Simulation(
            jacobi_plain(), 4, params={"steps": 4}, base_latency=0.05
        ).run()
        from repro.analysis.delay import estimate_message_delay

        fast = estimate_message_delay(fast_run.trace.events)
        assert slow.estimator.estimate > fast.estimate


class TestCalibratedTransform:
    def test_end_to_end(self):
        result = calibrated_transform(
            jacobi_plain(),
            4,
            params={"steps": 10},
            base_model=CostModel(checkpoint_overhead=2.0, failure_rate=0.05,
                                 params={"steps": 10}),
        )
        assert result.insertion is not None
        assert ast.count_statements(result.program, ast.Checkpoint) >= 1
        run = Simulation(result.program, 4, params={"steps": 6}).run()
        assert run.trace.all_straight_cuts_consistent()
