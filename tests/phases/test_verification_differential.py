"""Differential tests: bitset Condition 1 vs the enumerating checker.

:func:`~repro.phases.verification.check_condition1` decides Condition 1
with a reverse-postorder bitmask DP plus an SCC transitive closure;
:func:`~repro.phases.verification.check_condition1_enumerated` is the
original path-enumerating procedure it replaced. The two must agree —
verdict, balance, reason string, and the exact violation list — on
every program, including the branchy ones where enumeration is
exponential and the unbalanced ones where straight cuts are undefined.
"""

import pytest

from repro.bench.transform_hotpath import branchy_program
from repro.lang.parser import parse
from repro.lang.programs import load_program, program_names
from repro.phases.matching import build_extended_cfg
from repro.phases.verification import (
    check_condition1,
    check_condition1_enumerated,
)


def verdict(result):
    return (
        result.ok,
        result.balanced,
        result.reason,
        tuple(
            (v.index, v.src, v.dst, v.path, v.uses_back_edge)
            for v in result.violations
        ),
    )


def assert_agree(program):
    ext = build_extended_cfg(program)
    for include_back in (True, False):
        for first_only in (False, True):
            fast = check_condition1(ext, include_back, first_only)
            slow = check_condition1_enumerated(ext, include_back, first_only)
            assert verdict(fast) == verdict(slow)
            assert fast.enumeration.depth == slow.enumeration.depth
            assert fast.enumeration.balanced == slow.enumeration.balanced


class TestShippedPrograms:
    @pytest.mark.parametrize("name", program_names())
    def test_agree(self, name):
        assert_agree(load_program(name))


class TestBranchyPrograms:
    """Exponential-path inputs the bitset DP must decide exactly."""

    @pytest.mark.parametrize("branches", (1, 4, 8, 10))
    def test_balanced_diamonds_agree(self, branches):
        assert_agree(branchy_program(branches))

    def test_violating_diamonds_agree(self):
        # A checkpoint after the diamonds joins every path: same-index
        # members become connected and both checkers must report the
        # identical violation set.
        lines = ["program violating():", "    x = init(myrank)"]
        for index in range(4):
            lines += [
                f"    if x % 2 == {index % 2}:",
                "        checkpoint",
                "        x = x + 1",
                "    else:",
                "        checkpoint",
                "        x = x + 2",
            ]
        lines += ["    send(myrank, x)", "    y = recv(myrank)"]
        assert_agree(parse("\n".join(lines) + "\n"))

    def test_unbalanced_agree(self):
        source = (
            "program unbalanced():\n"
            "    x = init(myrank)\n"
            "    if x % 2 == 0:\n"
            "        checkpoint\n"
            "        x = x + 1\n"
            "    else:\n"
            "        x = x + 2\n"
        )
        program = parse(source)
        assert_agree(program)
        ext = build_extended_cfg(program)
        result = check_condition1(ext)
        assert not result.ok
        assert not result.balanced
        assert "different checkpoint counts" in result.reason
