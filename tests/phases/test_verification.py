"""Condition 1 / Theorem 3.2 verifier tests (paper Figures 1-6)."""

import pytest

from repro.errors import VerificationError
from repro.lang.parser import parse
from repro.lang.programs import (
    jacobi,
    jacobi_odd_even,
    ring_pipeline,
    ring_unsafe,
)
from repro.phases.matching import build_extended_cfg
from repro.phases.verification import (
    check_condition1,
    loop_ordering_constraints,
    verify_program,
)


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestPaperExamples:
    def test_figure1_jacobi_verifies(self):
        """Figure 1: checkpoints at the same program point — safe."""
        assert verify_program(jacobi()).ok

    def test_figure2_odd_even_fails(self):
        """Figure 2: parity-dependent placement — unsafe."""
        result = verify_program(jacobi_odd_even())
        assert not result.ok
        assert result.violations

    def test_figure2_violation_goes_through_message_edge(self):
        ext = build_extended_cfg(jacobi_odd_even())
        result = check_condition1(ext)
        violation = result.violations[0]
        message_pairs = {(m.send_id, m.recv_id) for m in ext.message_edges}
        path_pairs = set(zip(violation.path, violation.path[1:]))
        assert path_pairs & message_pairs

    def test_figure5_pattern_direct_path(self):
        """Two same-index checkpoints linked by a message edge path."""
        source = program(
            "if myrank % 2 == 0:\n"
            "    checkpoint\n"
            "    send(myrank + 1, 1)\n"
            "else:\n"
            "    y = recv(myrank - 1)\n"
            "    checkpoint\n"
        )
        result = verify_program(source)
        assert not result.ok
        assert not result.violations[0].uses_back_edge

    def test_figure6_pattern_back_edge_path(self):
        """A violating path that wraps around a loop backward edge."""
        result = verify_program(ring_unsafe())
        assert not result.ok
        # ring_unsafe also exhibits same-iteration violations; at least
        # the full-mode check must flag it.

    def test_raise_if_failed(self):
        with pytest.raises(VerificationError):
            verify_program(jacobi_odd_even()).raise_if_failed()
        verify_program(jacobi()).raise_if_failed()  # no exception


class TestModes:
    def test_singleton_columns_pass_both_modes(self):
        for prog in (jacobi(), ring_pipeline()):
            assert verify_program(prog, include_back_edge_paths=True).ok
            assert verify_program(prog, include_back_edge_paths=False).ok

    def test_back_edge_only_violation_passes_optimized_mode(self):
        source = program(
            "i = 0\n"
            "while i < steps:\n"
            "    if myrank % 2 == 0:\n"
            "        checkpoint\n"
            "        send(myrank + 1, 1)\n"
            "        y = recv(myrank + 1)\n"
            "    else:\n"
            "        checkpoint\n"
            "        y = recv(myrank - 1)\n"
            "        send(myrank - 1, 2)\n"
            "    i = i + 1\n"
        )
        assert not verify_program(source, include_back_edge_paths=True).ok
        assert verify_program(source, include_back_edge_paths=False).ok

    def test_ordering_constraints_derived(self):
        source = program(
            "i = 0\n"
            "while i < steps:\n"
            "    if myrank % 2 == 0:\n"
            "        checkpoint\n"
            "        send(myrank + 1, 1)\n"
            "        y = recv(myrank + 1)\n"
            "    else:\n"
            "        checkpoint\n"
            "        y = recv(myrank - 1)\n"
            "        send(myrank - 1, 2)\n"
            "    i = i + 1\n"
        )
        ext = build_extended_cfg(source)
        constraints = loop_ordering_constraints(ext)
        assert constraints
        for constraint in constraints:
            assert constraint.earlier != constraint.later

    def test_first_only_stops_early(self):
        ext = build_extended_cfg(jacobi_odd_even())
        all_violations = check_condition1(ext).violations
        first = check_condition1(ext, first_only=True).violations
        assert len(first) == 1
        assert len(all_violations) >= len(first)


class TestBalance:
    def test_unbalanced_program_rejected(self):
        source = program(
            "if myrank == 0:\n    checkpoint\nelse:\n    compute(1)\n"
        )
        ext = build_extended_cfg(source)
        result = check_condition1(ext)
        assert not result.ok
        assert not result.balanced
        assert "checkpoint counts" in result.reason

    def test_no_checkpoints_is_trivially_ok(self):
        source = program("compute(1)\ncompute(2)")
        ext = build_extended_cfg(source)
        assert check_condition1(ext).ok


class TestViolationReporting:
    def test_violation_describes_path(self):
        ext = build_extended_cfg(jacobi_odd_even())
        result = check_condition1(ext)
        text = result.violations[0].describe(ext)
        assert "S_1" in text
        assert "->" in text

    def test_violations_symmetric_pairs_reported(self):
        ext = build_extended_cfg(jacobi_odd_even())
        result = check_condition1(ext)
        pairs = {(v.src, v.dst) for v in result.violations}
        # with back edges, both directions are reachable
        assert len(pairs) >= 2
