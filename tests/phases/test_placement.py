"""Phase III (Algorithm 3.2 checkpoint motion) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.lang import ast_nodes as ast
from repro.lang.generator import generate_exchange_program
from repro.lang.parser import parse
from repro.lang.printer import ast_equal
from repro.lang.programs import jacobi, jacobi_odd_even, ring_unsafe
from repro.phases.placement import ensure_recovery_lines
from repro.phases.verification import verify_program


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestFigure2Repair:
    def test_conservative_mode_yields_figure1(self):
        """The headline example: Algorithm 3.2 turns the Figure 2
        program into exactly the Figure 1 program."""
        result = ensure_recovery_lines(jacobi_odd_even())
        assert ast_equal(result.program.body, jacobi().body)

    def test_moves_recorded(self):
        result = ensure_recovery_lines(jacobi_odd_even())
        assert len(result.moves) >= 2

    def test_output_verifies(self):
        result = ensure_recovery_lines(jacobi_odd_even())
        assert result.verification is not None and result.verification.ok
        assert verify_program(result.program).ok

    def test_input_not_mutated(self):
        source = jacobi_odd_even()
        import copy

        before = copy.deepcopy(source)
        ensure_recovery_lines(source)
        assert ast_equal(source, before)

    def test_loop_optimization_keeps_in_branch_checkpoints(self):
        result = ensure_recovery_lines(jacobi_odd_even(), loop_optimization=True)
        # checkpoints stay inside the if branches (minimal motion)
        loop = next(
            s for s in result.program.body.statements if isinstance(s, ast.While)
        )
        branch = next(
            s for s in loop.body.statements if isinstance(s, ast.If)
        )
        assert isinstance(branch.then_block.statements[0], ast.Checkpoint)
        assert isinstance(branch.else_block.statements[0], ast.Checkpoint)

    def test_loop_optimization_emits_ordering_constraints(self):
        result = ensure_recovery_lines(jacobi_odd_even(), loop_optimization=True)
        assert result.ordering_constraints
        assert verify_program(
            result.program, include_back_edge_paths=False
        ).ok


class TestOtherRepairs:
    def test_ring_unsafe_repaired(self):
        result = ensure_recovery_lines(ring_unsafe())
        assert verify_program(result.program).ok

    def test_already_safe_program_untouched(self):
        result = ensure_recovery_lines(jacobi())
        assert result.moves == ()
        assert ast_equal(result.program, jacobi())

    def test_checkpoint_count_preserved_or_merged(self):
        before = ast.count_statements(jacobi_odd_even(), ast.Checkpoint)
        result = ensure_recovery_lines(jacobi_odd_even())
        after = ast.count_statements(result.program, ast.Checkpoint)
        assert 1 <= after <= before

    def test_non_loop_split_checkpoints_merged(self):
        source = program(
            "if myrank % 2 == 0:\n"
            "    checkpoint\n"
            "    send(myrank + 1, 1)\n"
            "    y = recv(myrank + 1)\n"
            "else:\n"
            "    y = recv(myrank - 1)\n"
            "    send(myrank - 1, 2)\n"
            "    checkpoint\n"
        )
        result = ensure_recovery_lines(source)
        assert verify_program(result.program).ok

    def test_move_budget_enforced(self):
        with pytest.raises(PlacementError, match="moves"):
            ensure_recovery_lines(jacobi_odd_even(), max_moves=0)


class TestSemanticPreservation:
    """Checkpoint motion must never change program results."""

    @pytest.mark.parametrize("make", [jacobi_odd_even, ring_unsafe])
    def test_final_states_unchanged(self, make):
        from repro.runtime import Simulation

        original = make()
        fixed = ensure_recovery_lines(original).program
        env_a = Simulation(original, 4, params={"steps": 4}).run().final_env
        env_b = Simulation(fixed, 4, params={"steps": 4}).run().final_env
        assert env_a == env_b

    def test_message_statements_never_move(self):
        source = jacobi_odd_even()
        result = ensure_recovery_lines(source)
        def message_shape(prog):
            return [
                (type(n).__name__, n.line)
                for n in ast.walk(prog)
                if isinstance(n, (ast.Send, ast.Recv))
            ]
        assert message_shape(source) == message_shape(result.program)


class TestPropertyRepair:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_generated_unsafe_programs_always_repaired(self, seed):
        source = generate_exchange_program(seed, checkpoint_position="split")
        result = ensure_recovery_lines(source)
        assert verify_program(result.program).ok

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_generated_safe_programs_need_no_moves(self, seed):
        source = generate_exchange_program(seed, checkpoint_position="head")
        result = ensure_recovery_lines(source)
        assert result.moves == ()
