"""End-to-end transform() pipeline tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.programs import jacobi, jacobi_odd_even, jacobi_plain
from repro.phases.insertion import CostModel
from repro.phases.pipeline import transform
from repro.phases.verification import verify_program


class TestTransform:
    def test_plain_program_gets_phase1(self):
        result = transform(
            jacobi_plain(),
            cost_model=CostModel(
                checkpoint_overhead=2.0, failure_rate=0.1, params={"steps": 10}
            ),
        )
        assert result.insertion is not None
        assert ast.count_statements(result.program, ast.Checkpoint) >= 1

    def test_checkpointed_program_skips_phase1(self):
        result = transform(jacobi_odd_even())
        assert result.insertion is None

    def test_force_insertion(self):
        result = transform(
            jacobi(),
            cost_model=CostModel(
                checkpoint_overhead=2.0, failure_rate=0.1, params={"steps": 10}
            ),
            force_insertion=True,
        )
        assert result.insertion is not None

    def test_output_always_verifies(self):
        for make in (jacobi, jacobi_odd_even, jacobi_plain):
            result = transform(
                make(),
                cost_model=CostModel(
                    checkpoint_overhead=2.0,
                    failure_rate=0.1,
                    params={"steps": 10},
                ),
            )
            assert result.verification.ok
            assert verify_program(result.program).ok

    def test_transformed_plain_program_is_simulation_safe(self):
        result = transform(
            jacobi_plain(),
            cost_model=CostModel(
                checkpoint_overhead=2.0, failure_rate=0.1, params={"steps": 10}
            ),
        )
        from repro.runtime import Simulation

        run = Simulation(result.program, 4, params={"steps": 6}).run()
        assert run.stats.completed
        assert run.trace.all_straight_cuts_consistent()

    def test_loop_optimization_flag_propagates(self):
        result = transform(jacobi_odd_even(), loop_optimization=True)
        assert result.placement.ordering_constraints

    def test_input_never_mutated(self):
        import copy

        from repro.lang.printer import ast_equal

        source = jacobi_odd_even()
        before = copy.deepcopy(source)
        transform(source)
        assert ast_equal(source, before)
