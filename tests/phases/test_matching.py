"""Phase II (Algorithm 3.1 message matching) tests."""

import pytest

from repro.cfg import build_cfg
from repro.errors import MatchingError
from repro.lang.parser import parse
from repro.lang.programs import (
    broadcast_reduce,
    irregular_dispatch,
    jacobi,
    jacobi_odd_even,
    master_worker,
    ring_pipeline,
)
from repro.phases.matching import build_extended_cfg, match_messages


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestCompleteness:
    """Lemma 3.1: the true sender is always among the matches."""

    def test_every_recv_matched(self, any_program):
        result = match_messages(any_program)
        assert result.unmatched_recv_ids == ()

    def test_jacobi_cross_parity_edges(self):
        ext = build_extended_cfg(jacobi())
        cfg = ext.cfg
        assert len(ext.message_edges) == 2
        for edge in ext.message_edges:
            send = cfg.node(edge.send_id)
            recv = cfg.node(edge.recv_id)
            assert send.stmt is not recv.stmt

    def test_ring_wraparound_matched(self):
        ext = build_extended_cfg(ring_pipeline())
        # rank-0 recv from nprocs-1 must match the non-zero send
        cfg = ext.cfg
        rank0_recv = next(
            n for n in cfg.recv_nodes() if "nprocs" in n.label
        )
        assert ext.matches_for_recv(rank0_recv.node_id)

    def test_master_worker_star_topology(self):
        ext = build_extended_cfg(master_worker())
        for recv in ext.cfg.recv_nodes():
            assert ext.matches_for_recv(recv.node_id)


class TestCollectives:
    def test_bcast_prematched(self):
        ext = build_extended_cfg(broadcast_reduce())
        cfg = ext.cfg
        coll_recv = next(n for n in cfg.recv_nodes() if n.collective)
        matches = ext.matches_for_recv(coll_recv.node_id)
        assert len(matches) == 1
        assert cfg.node(matches[0]).collective

    def test_collective_edge_reason(self):
        ext = build_extended_cfg(broadcast_reduce())
        reasons = [m.reason for m in ext.message_edges]
        assert any("collective" in r for r in reasons)


class TestIrregularPatterns:
    def test_irregular_recv_matches_multiple_sends(self):
        source = program(
            "if myrank == 0:\n"
            "    send(1, 10)\n"
            "elif myrank == 2:\n"
            "    send(1, 20)\n"
            "else:\n"
            "    y = recv(input(who) % nprocs)\n"
        )
        ext = build_extended_cfg(source)
        recv = ext.cfg.recv_nodes()[0]
        assert len(ext.matches_for_recv(recv.node_id)) == 2

    def test_irregular_dispatch_workers_match_master(self):
        ext = build_extended_cfg(irregular_dispatch())
        assert all(
            ext.matches_for_recv(r.node_id) for r in ext.cfg.recv_nodes()
        )


class TestContradictionPruning:
    def test_parity_contradiction_prunes_same_branch_match(self):
        ext = build_extended_cfg(jacobi())
        cfg = ext.cfg
        # even-branch send must NOT match even-branch recv
        for edge in ext.message_edges:
            send_stmt = cfg.node(edge.send_id).stmt
            recv_stmt = cfg.node(edge.recv_id).stmt
            assert send_stmt.line != recv_stmt.line or send_stmt is recv_stmt

    def test_report_counts_considered_pairs(self):
        result = match_messages(jacobi())
        assert len(result.report.considered) >= 4
        assert len(result.report.contradicted) >= 1


class TestFailureModes:
    def test_unmatchable_recv_raises(self):
        source = program(
            "if myrank == 0:\n"
            "    y = recv(1)\n"
            "else:\n"
            "    compute(1)\n"
        )
        with pytest.raises(MatchingError, match="no matching send"):
            build_extended_cfg(source)

    def test_partial_result_when_not_required(self):
        source = program(
            "if myrank == 0:\n"
            "    y = recv(1)\n"
            "else:\n"
            "    compute(1)\n"
        )
        result = match_messages(source, require_complete=False)
        assert len(result.unmatched_recv_ids) == 1

    def test_contradicting_constant_endpoints_unmatched(self):
        source = program(
            "if myrank == 0:\n"
            "    send(1, 5)\n"
            "else:\n"
            "    y = recv(3)\n"
        )
        # receiver claims source 3 but only rank 0 sends, to rank 1:
        # rank 1's recv(3) can never see rank 0's send... except ranks
        # other than 0/1 also execute recv(3) and source 3 is not 0.
        with pytest.raises(MatchingError):
            build_extended_cfg(source)

    def test_reuses_supplied_cfg(self):
        prog = jacobi_odd_even()
        cfg = build_cfg(prog)
        ext = build_extended_cfg(prog, cfg=cfg)
        assert ext.cfg is cfg
