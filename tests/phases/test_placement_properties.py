"""Determinism and idempotence properties of the offline pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.generator import generate_exchange_program
from repro.lang.printer import ast_equal, to_source
from repro.phases import ensure_recovery_lines, transform
from repro.phases.insertion import CostModel


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=20_000))
def test_placement_is_deterministic(seed):
    program = generate_exchange_program(seed, checkpoint_position="split")
    first = ensure_recovery_lines(program)
    second = ensure_recovery_lines(program)
    assert ast_equal(first.program, second.program)
    assert [m.description for m in first.moves] == [
        m.description for m in second.moves
    ]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=20_000))
def test_placement_is_idempotent(seed):
    program = generate_exchange_program(seed, checkpoint_position="split")
    once = ensure_recovery_lines(program)
    twice = ensure_recovery_lines(once.program)
    assert twice.moves == ()
    assert ast_equal(once.program, twice.program)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=20_000))
def test_transform_round_trips_through_source(seed):
    """Transform, print, re-parse, re-verify: the printed artifact is a
    complete representation of the safe program."""
    from repro.lang.parser import parse
    from repro.phases.verification import verify_program

    program = generate_exchange_program(seed)
    result = transform(
        program,
        cost_model=CostModel(params={"steps": 8}),
    )
    reparsed = parse(to_source(result.program))
    assert verify_program(reparsed).ok


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20_000),
    budget_scale=st.sampled_from([1, 3]),
)
def test_move_budget_independence(seed, budget_scale):
    """A larger budget never changes the result, only the headroom."""
    program = generate_exchange_program(seed, checkpoint_position="split")
    tight = ensure_recovery_lines(program)
    generous = ensure_recovery_lines(program, max_moves=200 * budget_scale)
    assert ast_equal(tight.program, generous.program)
