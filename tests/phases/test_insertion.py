"""Phase I (static checkpoint insertion) tests."""

import pytest

from repro.cfg import build_cfg
from repro.cfg.paths import enumerate_checkpoints
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.printer import ast_equal
from repro.phases.insertion import (
    CostModel,
    estimate_cost,
    insert_checkpoints,
)


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


class TestCostModel:
    def test_interval_is_youngs_formula(self):
        model = CostModel(checkpoint_overhead=8.0, failure_rate=0.01)
        assert model.interval() == pytest.approx((2 * 8.0 / 0.01) ** 0.5)

    def test_compute_cost_uses_literal(self):
        cost = estimate_cost(program("compute(7)"))
        assert cost == pytest.approx(7.0)

    def test_message_statements_cost_delay(self):
        model = CostModel(message_delay=9.0, local_statement=1.0)
        cost = estimate_cost(program("send(0, 1)"), model)
        assert cost == pytest.approx(10.0)

    def test_loop_cost_multiplied_by_trips(self):
        cost = estimate_cost(
            program("for k in range(5):\n    compute(2)")
        )
        assert cost == pytest.approx(10.0)

    def test_while_idiom_bound_recognised(self):
        model = CostModel(params={"steps": 4}, local_statement=0.0)
        cost = estimate_cost(
            program("i = 0\nwhile i < steps:\n    compute(3)\n    i = i + 1"),
            model,
        )
        # ~5 trips of cost 3 (bound + 1 for the idiom recognizer)
        assert cost >= 12.0

    def test_if_costs_max_of_branches(self):
        cost = estimate_cost(
            program("if myrank == 0:\n    compute(10)\nelse:\n    compute(2)")
        )
        assert cost == pytest.approx(10.0)

    def test_unknown_loop_uses_default_trips(self):
        model = CostModel(default_loop_trips=3, local_statement=0.0)
        cost = estimate_cost(
            program("while input(x) > 0:\n    compute(2)"), model
        )
        assert cost == pytest.approx(6.0)


class TestInsertion:
    def test_input_never_mutated(self):
        source = program("compute(100)\ncompute(100)")
        import copy

        before = copy.deepcopy(source)
        insert_checkpoints(source, CostModel(checkpoint_overhead=1, failure_rate=0.1))
        assert ast_equal(source, before)

    def test_straight_line_insertion(self):
        model = CostModel(checkpoint_overhead=2.0, failure_rate=0.1)  # T* ~ 6.3
        plan = insert_checkpoints(
            program("compute(5)\ncompute(5)\ncompute(5)\ncompute(5)"), model
        )
        assert plan.inserted >= 2
        assert ast.count_statements(plan.program, ast.Checkpoint) == plan.inserted

    def test_cheap_program_gets_no_checkpoints(self):
        model = CostModel(checkpoint_overhead=100.0, failure_rate=1e-6)
        plan = insert_checkpoints(program("compute(1)"), model)
        assert plan.inserted == 0

    def test_expensive_loop_body_checkpointed_inside(self):
        model = CostModel(checkpoint_overhead=2.0, failure_rate=0.1)  # T* ~ 6.3
        plan = insert_checkpoints(
            program("i = 0\nwhile i < 50:\n    compute(20)\n    i = i + 1"),
            model,
        )
        loop = next(
            s for s in plan.program.body.statements if isinstance(s, ast.While)
        )
        assert ast.count_statements(loop, ast.Checkpoint) >= 1

    def test_cheap_loop_body_checkpoint_at_head(self):
        # Body cost < T* but the loop total spans many intervals: a
        # checkpoint belongs at the body head.
        model = CostModel(checkpoint_overhead=10.0, failure_rate=0.05)  # T* = 20
        plan = insert_checkpoints(
            program("i = 0\nwhile i < 100:\n    compute(5)\n    i = i + 1"),
            model,
        )
        loop = next(
            s for s in plan.program.body.statements if isinstance(s, ast.While)
        )
        assert isinstance(loop.body.statements[0], ast.Checkpoint)

    def test_result_is_balanced(self):
        model = CostModel(checkpoint_overhead=2.0, failure_rate=0.1)
        plan = insert_checkpoints(
            program(
                "if myrank == 0:\n    compute(30)\nelse:\n    compute(1)\n"
                "compute(30)"
            ),
            model,
        )
        enum = enumerate_checkpoints(build_cfg(plan.program))
        assert enum.balanced

    def test_balance_adds_to_lighter_branch(self):
        model = CostModel(checkpoint_overhead=2.0, failure_rate=0.1)
        plan = insert_checkpoints(
            program("if myrank == 0:\n    compute(50)\nelse:\n    compute(1)"),
            model,
        )
        assert plan.balance_added >= 1
        enum = enumerate_checkpoints(build_cfg(plan.program))
        assert enum.balanced

    def test_existing_checkpoints_reset_interval(self):
        model = CostModel(checkpoint_overhead=2.0, failure_rate=0.1)  # T* ~ 6.3
        plan = insert_checkpoints(
            program("compute(5)\ncheckpoint\ncompute(5)"), model
        )
        # the explicit checkpoint resets the accumulator; at most one new
        total = ast.count_statements(plan.program, ast.Checkpoint)
        assert total <= 3

    def test_plan_reports_estimate(self):
        plan = insert_checkpoints(program("compute(12)"))
        assert plan.estimated_cost >= 12.0
