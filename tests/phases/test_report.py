"""Transformation-report tests."""

from repro.lang.programs import jacobi, jacobi_odd_even, jacobi_plain
from repro.phases.insertion import CostModel
from repro.phases.pipeline import transform
from repro.phases.report import transform_report


class TestTransformReport:
    def test_insertion_section(self):
        result = transform(
            jacobi_plain(),
            cost_model=CostModel(
                checkpoint_overhead=2.0, failure_rate=0.05,
                params={"steps": 10},
            ),
        )
        report = transform_report(result)
        assert "phase I : inserted" in report
        assert "verified : Condition 1 holds" in report

    def test_skipped_insertion_reported(self):
        report = transform_report(transform(jacobi()))
        assert "skipped" in report

    def test_moves_listed(self):
        report = transform_report(transform(jacobi_odd_even()))
        assert "phase III:" in report
        assert "move checkpoint" in report

    def test_no_moves_case(self):
        report = transform_report(transform(jacobi()))
        assert "no moves" in report

    def test_ordering_constraints_shown(self):
        result = transform(jacobi_odd_even(), loop_optimization=True)
        report = transform_report(result)
        assert "ordering constraint" in report

    def test_depth_reported(self):
        report = transform_report(transform(jacobi()))
        assert "1 straight cut(s)" in report

    def test_cli_transform_uses_report(self, capsys):
        from repro.cli import main

        assert main(["transform", "@jacobi_odd_even"]) == 0
        err = capsys.readouterr().err
        assert "# phase III:" in err
        assert "# verified :" in err
