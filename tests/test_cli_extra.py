"""CLI tests for the compare and optimal subcommands."""

import pytest

from repro.cli import main


class TestCompare:
    def test_table_with_all_protocols(self, capsys):
        assert main(["compare", "jacobi", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        for name in ("appl-driven", "SaS", "C-L", "uncoordinated",
                     "CIC-BCS", "msg-logging"):
            assert name in out

    def test_with_crash(self, capsys):
        assert main(
            ["compare", "jacobi", "--steps", "10", "--crash", "8.0:1"]
        ) == 0
        out = capsys.readouterr().out
        # every protocol shows one rollback
        rows = [l for l in out.splitlines() if "jacobi" in l]
        assert all(" 1 " in row for row in rows)

    def test_unknown_workload(self, capsys):
        assert main(["compare", "nonexistent"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestOptimal:
    def test_default_sizes(self, capsys):
        assert main(["optimal"]) == 0
        out = capsys.readouterr().out
        assert "512" in out
        assert "appl-driven" in out

    def test_custom_sizes(self, capsys):
        assert main(["optimal", "-n", "32"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert len(lines) == 1


class TestLint:
    def test_clean_program(self, capsys):
        assert main(["lint", "@jacobi"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_nonzero(self, capsys, tmp_path):
        path = tmp_path / "bad.mp"
        path.write_text("program bad():\n    y = ghost\n    send(myrank, y)\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "'ghost'" in out
        assert "sender itself" in out

    def test_warning_only_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "warn.mp"
        path.write_text(
            "program warn():\n"
            "    if myrank == 0:\n        checkpoint\n    else:\n        pass\n"
        )
        assert main(["lint", str(path)]) == 0
        assert "warning" in capsys.readouterr().out

    def test_custom_params(self, capsys, tmp_path):
        path = tmp_path / "p.mp"
        path.write_text("program p():\n    x = rounds + 1\n")
        assert main(["lint", str(path), "--param", "rounds"]) == 0
