"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.lang.programs import (
    jacobi,
    jacobi_odd_even,
    jacobi_plain,
    load_program,
    master_worker,
    program_names,
)


@pytest.fixture
def jacobi_program():
    """The paper's Figure 1 Jacobi program (safe placement)."""
    return jacobi()


@pytest.fixture
def odd_even_program():
    """The paper's Figure 2 odd/even variant (unsafe placement)."""
    return jacobi_odd_even()


@pytest.fixture
def plain_program():
    """Jacobi with no checkpoint statements (Phase I input)."""
    return jacobi_plain()


@pytest.fixture
def master_worker_program():
    return master_worker()


@pytest.fixture(params=program_names())
def any_program(request):
    """Parametrised over every shipped program."""
    return load_program(request.param)
