"""Public-API stability: the names downstream users rely on.

A snapshot of the top-level surface: adding names is fine (extend the
sets), but removing or renaming any of these is a breaking change that
this test makes deliberate.
"""

import repro
import repro.analysis
import repro.protocols

TOP_LEVEL = {
    "FailurePlan",
    "ModelParameters",
    "ProtocolKind",
    "RuntimeCosts",
    "Simulation",
    "TransformResult",
    "build_cfg",
    "build_extended_cfg",
    "check_condition1",
    "ensure_recovery_lines",
    "figure8_series",
    "figure9_series",
    "gamma_closed_form",
    "insert_checkpoints",
    "load_program",
    "overhead_ratio",
    "parse",
    "program_names",
    "to_source",
    "transform",
    "verify_program",
}

PROTOCOLS = {
    "ApplicationDrivenProtocol",
    "ChandyLamportProtocol",
    "CheckpointingProtocol",
    "InducedProtocol",
    "MessageLoggingProtocol",
    "SyncAndStopProtocol",
    "UncoordinatedProtocol",
}

ANALYSIS = {
    "IntervalMarkovChain",
    "ModelParameters",
    "ProtocolKind",
    "STARFISH_DEFAULTS",
    "break_even_work",
    "daly_interval",
    "figure8_series",
    "figure9_series",
    "gamma_closed_form",
    "optimal_interval_exact",
    "overhead_ratio",
    "sensitivity_sweep",
    "simulate_interval_time",
    "system_failure_rate",
    "young_interval",
}


def test_top_level_surface_complete():
    missing = TOP_LEVEL - set(repro.__all__)
    assert not missing, f"missing from repro.__all__: {sorted(missing)}"
    for name in TOP_LEVEL:
        assert hasattr(repro, name), name


def test_protocol_surface_complete():
    missing = PROTOCOLS - set(repro.protocols.__all__)
    assert not missing
    for name in PROTOCOLS:
        assert hasattr(repro.protocols, name), name


def test_analysis_surface_complete():
    missing = ANALYSIS - set(repro.analysis.__all__)
    assert not missing, sorted(missing)
    for name in ANALYSIS:
        assert hasattr(repro.analysis, name), name


def test_all_exports_resolve():
    for module in (repro, repro.protocols, repro.analysis):
        for name in module.__all__:
            assert getattr(module, name) is not None, (module.__name__, name)
