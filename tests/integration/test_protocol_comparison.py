"""V4/V5: protocol-comparison experiments on the simulator.

These are the empirical counterparts of the paper's analytic Section 4:
same workload, same seed, different protocols.
"""

import pytest

from repro.bench.workloads import (
    ProtocolRunSummary,
    run_protocol_comparison,
    standard_workloads,
    strip_checkpoints,
)
from repro.lang import ast_nodes as ast
from repro.lang.programs import jacobi
from repro.runtime import FailurePlan


@pytest.fixture(scope="module")
def comparison_rows():
    workload = standard_workloads(steps=12)[0]  # jacobi
    return run_protocol_comparison(
        workload, period=6.0, failure_plan=FailurePlan.single(14.3, 2)
    )


class TestCoordinationCosts:
    def test_appl_driven_is_coordination_free(self, comparison_rows):
        appl = next(r for r in comparison_rows if r.protocol == "appl-driven")
        assert appl.control_messages == 0
        assert appl.forced_checkpoints == 0

    def test_coordinated_protocols_pay_messages(self, comparison_rows):
        for name in ("SaS", "C-L"):
            row = next(r for r in comparison_rows if r.protocol == name)
            assert row.control_messages > 0

    def test_cl_sends_more_messages_than_sas(self):
        """Per round, C-L floods (n-1)(n+1) control messages vs SaS's
        5(n-1) — strictly more for n > 4 (at n = 4 they tie)."""
        workload = next(
            w for w in standard_workloads(steps=12) if w.name == "pingpong"
        )
        assert workload.n_processes == 6
        rows = run_protocol_comparison(
            workload, period=6.0, protocols=("SaS", "C-L")
        )
        sas = next(r for r in rows if r.protocol == "SaS")
        cl = next(r for r in rows if r.protocol == "C-L")
        assert cl.control_messages / max(1, cl.rollbacks + 1) > 0
        per_round_sas = 5 * (6 - 1)
        per_round_cl = 6 * 5 + 5
        assert per_round_cl > per_round_sas
        assert cl.control_messages > sas.control_messages

    def test_uncoordinated_and_cic_message_free(self, comparison_rows):
        for name in ("uncoordinated", "CIC-BCS"):
            row = next(r for r in comparison_rows if r.protocol == name)
            assert row.control_messages == 0

    def test_all_protocols_complete_and_recover(self, comparison_rows):
        for row in comparison_rows:
            assert row.completed, row.protocol
            assert row.failures == 1, row.protocol
            assert row.rollbacks == 1, row.protocol


class TestHarness:
    def test_rows_render(self, comparison_rows):
        header = ProtocolRunSummary.header()
        for row in comparison_rows:
            line = row.row()
            assert len(line.split()) >= 7
        assert "protocol" in header

    def test_strip_checkpoints(self):
        stripped = strip_checkpoints(jacobi())
        assert ast.count_statements(stripped, ast.Checkpoint) == 0
        # original untouched
        assert ast.count_statements(jacobi(), ast.Checkpoint) == 1

    def test_standard_workloads_all_run(self):
        for spec in standard_workloads(steps=4):
            rows = run_protocol_comparison(
                spec, period=8.0, protocols=("appl-driven",)
            )
            assert rows[0].completed, spec.name

    def test_subset_of_protocols(self):
        workload = standard_workloads(steps=4)[0]
        rows = run_protocol_comparison(
            workload, protocols=("appl-driven", "SaS")
        )
        assert [r.protocol for r in rows] == ["appl-driven", "SaS"]
