"""V1/V2: empirical validation of Theorem 3.2 on random programs.

The central soundness claim of the whole reproduction: for randomly
generated exchange programs,

- static verdict SAFE  ⟹  every straight cut of every simulated
  execution is a consistent recovery line;
- static verdict UNSAFE ⟹ the simulated execution exhibits an
  inconsistent straight cut (the necessity direction on this program
  family); and
- Phase III repair turns every unsafe program into a safe one without
  changing program results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.generator import generate_exchange_program
from repro.phases import ensure_recovery_lines, verify_program
from repro.runtime import Simulation

SIM_KWARGS = dict(params={"steps": 4})


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_safe_placements_yield_recovery_lines(seed):
    program = generate_exchange_program(seed, checkpoint_position="head")
    assert verify_program(program).ok
    for n in (2, 4):
        trace = Simulation(program, n, **SIM_KWARGS).run().trace
        assert trace.all_straight_cuts_consistent()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_unsafe_placements_detected_and_witnessed(seed):
    program = generate_exchange_program(seed, checkpoint_position="split")
    assert not verify_program(program).ok
    trace = Simulation(program, 4, **SIM_KWARGS).run().trace
    assert not trace.all_straight_cuts_consistent()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_repair_restores_safety_and_semantics(seed):
    program = generate_exchange_program(seed, checkpoint_position="split")
    repaired = ensure_recovery_lines(program).program
    assert verify_program(repaired).ok
    trace_fixed = Simulation(repaired, 4, **SIM_KWARGS).run()
    assert trace_fixed.trace.all_straight_cuts_consistent()
    original = Simulation(program, 4, **SIM_KWARGS).run()
    assert trace_fixed.final_env == original.final_env


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    n=st.sampled_from([2, 4, 6]),
)
def test_static_and_dynamic_verdicts_agree(seed, n):
    """The iff of Theorem 3.2, on this program family."""
    for position in ("head", "split"):
        program = generate_exchange_program(seed, checkpoint_position=position)
        static_ok = verify_program(program).ok
        trace = Simulation(program, n, **SIM_KWARGS).run().trace
        dynamic_ok = trace.all_straight_cuts_consistent()
        if static_ok:
            assert dynamic_ok
        else:
            # necessity holds on 4+ processes; with n == 2 some unsafe
            # placements can still be accidentally consistent
            if n >= 4:
                assert not dynamic_ok


def test_loop_optimized_placements_safe_dynamically():
    """Loop-optimisation mode keeps per-branch checkpoints; the
    dynamic-index straight cuts must still be recovery lines."""
    from repro.lang.programs import jacobi_odd_even

    result = ensure_recovery_lines(jacobi_odd_even(), loop_optimization=True)
    trace = Simulation(result.program, 4, params={"steps": 5}).run().trace
    assert trace.all_straight_cuts_consistent()


def test_ordering_constraints_hold_in_executions():
    """The paper's loop-optimisation ordering guarantee, checked on the
    trace: for every constraint (earlier, later) and every index i, the
    i-th instance due to `earlier` completes before the i-th instance
    due to `later` is *depended upon* — equivalently, the straight cut
    pairing them is consistent, which the previous test asserts; here
    we additionally check the constraint endpoints are real nodes."""
    from repro.lang.programs import jacobi_odd_even
    from repro.phases.matching import build_extended_cfg
    from repro.phases.verification import loop_ordering_constraints

    result = ensure_recovery_lines(jacobi_odd_even(), loop_optimization=True)
    ext = build_extended_cfg(result.program)
    for constraint in loop_ordering_constraints(ext):
        assert constraint.earlier in ext.cfg
        assert constraint.later in ext.cfg
