"""V1/V2 over the second generated program family (rings)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.generator import generate_ring_program
from repro.phases import ensure_recovery_lines, verify_program
from repro.runtime import Simulation


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    n=st.sampled_from([2, 3, 5]),
)
def test_safe_ring_placements(seed, n):
    program = generate_ring_program(seed, checkpoint_position="head")
    assert verify_program(program).ok
    trace = Simulation(program, n, params={"steps": 4}).run().trace
    assert trace.all_straight_cuts_consistent()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_unsafe_ring_placements_detected(seed):
    program = generate_ring_program(seed, checkpoint_position="split")
    assert not verify_program(program).ok
    trace = Simulation(program, 4, params={"steps": 4}).run().trace
    assert not trace.all_straight_cuts_consistent()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_ring_repair(seed):
    program = generate_ring_program(seed, checkpoint_position="split")
    repaired = ensure_recovery_lines(program)
    assert verify_program(repaired.program).ok
    result = Simulation(repaired.program, 5, params={"steps": 4}).run()
    assert result.trace.all_straight_cuts_consistent()
    original = Simulation(program, 5, params={"steps": 4}).run()
    assert result.final_env == original.final_env
