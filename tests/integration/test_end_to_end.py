"""Whole-library end-to-end flows, exercising the public API only."""

import pytest

import repro
from repro.protocols import ApplicationDrivenProtocol


QUICKSTART_SOURCE = """\
program quickstart():
    x = init(myrank)
    i = 0
    while i < steps:
        if myrank % 2 == 0:
            send(myrank + 1, x)
            y = recv(myrank + 1)
            checkpoint
        else:
            y = recv(myrank - 1)
            send(myrank - 1, x)
            checkpoint
        x = combine(x, y)
        i = i + 1
"""


class TestPublicApiFlow:
    def test_parse_transform_simulate_recover(self):
        program = repro.parse(QUICKSTART_SOURCE)
        assert not repro.verify_program(program).ok

        result = repro.transform(program)
        assert repro.verify_program(result.program).ok

        baseline = repro.Simulation(
            result.program, 4, params={"steps": 6}
        ).run()
        crashed = repro.Simulation(
            result.program,
            4,
            params={"steps": 6},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=repro.FailurePlan.single(7.7, 1),
        ).run()
        assert crashed.stats.completed
        assert crashed.stats.control_messages == 0
        assert crashed.final_env == baseline.final_env

    def test_roundtrip_source(self):
        program = repro.parse(QUICKSTART_SOURCE)
        result = repro.transform(program)
        text = repro.to_source(result.program)
        reparsed = repro.parse(text)
        assert repro.verify_program(reparsed).ok

    def test_program_registry_exposed(self):
        assert "jacobi" in repro.program_names()
        program = repro.load_program("jacobi")
        assert repro.verify_program(program).ok

    def test_analysis_entry_points(self):
        curves = repro.figure8_series()
        assert repro.ProtocolKind.APPLICATION_DRIVEN in curves
        ratio = repro.overhead_ratio(1e-4, 300.0, 1.78, 3.32, 4.292)
        gamma = repro.gamma_closed_form(1e-4, 300.0, 1.78, 3.32, 4.292)
        assert ratio == pytest.approx(gamma / 300.0 - 1.0)

    def test_version_exported(self):
        assert repro.__version__


class TestInsertionToRecoveryPipeline:
    def test_uncheckpointed_program_full_pipeline(self):
        """Phase I inserts, Phase II/III verify, simulator validates,
        recovery works — all from a checkpoint-free source."""
        from repro.phases.insertion import CostModel

        program = repro.load_program("jacobi_plain")
        result = repro.transform(
            program,
            cost_model=CostModel(
                checkpoint_overhead=2.0,
                failure_rate=0.05,
                params={"steps": 10},
            ),
        )
        assert result.insertion is not None
        assert result.insertion.inserted >= 1

        run = repro.Simulation(
            result.program,
            4,
            params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=repro.FailurePlan.single(13.9, 3),
        ).run()
        assert run.stats.completed
        assert run.trace.all_straight_cuts_consistent()
