"""The paper's running examples (Figures 1-6), end to end.

Each test states which figure it reproduces; together they constitute
the executable form of Section 2/3's narrative.
"""

import pytest

from repro.cfg import build_cfg, enumerate_checkpoints, find_back_edges
from repro.lang import to_source
from repro.lang.parser import parse
from repro.lang.printer import ast_equal
from repro.lang.programs import jacobi, jacobi_odd_even
from repro.phases import (
    build_extended_cfg,
    check_condition1,
    ensure_recovery_lines,
    transform,
    verify_program,
)
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation


class TestFigure1:
    """The Jacobi program: same checkpoint point for every process."""

    def test_cfg_has_backward_edge(self):
        cfg = build_cfg(jacobi())
        assert len(find_back_edges(cfg)) == 1

    def test_single_shared_checkpoint_node(self):
        enum = enumerate_checkpoints(build_cfg(jacobi()))
        assert [len(c) for c in enum.columns] == [1]

    def test_every_straight_cut_is_recovery_line_statically(self):
        assert verify_program(jacobi()).ok

    def test_every_straight_cut_is_recovery_line_empirically(self):
        for n in (2, 4, 6):
            trace = Simulation(jacobi(), n, params={"steps": 5}).run().trace
            assert trace.all_straight_cuts_consistent()


class TestFigures2to4:
    """The odd/even variant, its execution, and its extended CFG."""

    def test_parity_branch_is_id_dependent(self):
        from repro.attributes.dataflow import (
            ConditionClass,
            classify_condition,
            classify_variables,
        )
        from repro.lang import ast_nodes as ast

        program = jacobi_odd_even()
        classes = classify_variables(program)
        branch = next(
            n
            for n in ast.walk(program)
            if isinstance(n, ast.If)
        )
        assert (
            classify_condition(branch.cond, classes)
            is ConditionClass.ID_DEPENDENT
        )

    def test_extended_cfg_has_cross_parity_message_edges(self):
        """Figure 4: message edges between the matched send/recv pairs."""
        ext = build_extended_cfg(jacobi_odd_even())
        assert len(ext.message_edges) == 2

    def test_condition1_violated(self):
        ext = build_extended_cfg(jacobi_odd_even())
        result = check_condition1(ext)
        assert not result.ok

    def test_figure3_execution_has_inconsistent_straight_cut(self):
        """Figure 3: 'not every straight cut of checkpoints is a
        recovery line'."""
        trace = Simulation(
            jacobi_odd_even(), 4, params={"steps": 5}
        ).run().trace
        assert not trace.all_straight_cuts_consistent()

    def test_causality_direction_matches_paper(self):
        """The even process's checkpoint happens before the odd's (the
        message from even to odd crosses between them)."""
        from repro.causality.cuts import cut_is_consistent

        trace = Simulation(jacobi_odd_even(), 2, params={"steps": 3}).run().trace
        cut = trace.straight_cut(1)
        assert not cut_is_consistent(cut)
        even_member = cut.member_for(0)
        odd_member = cut.member_for(1)
        assert even_member.clock.happened_before(odd_member.clock)


class TestFigures5and6:
    """Inconsistency patterns: direct paths and back-edge paths."""

    def test_direct_path_pattern_rejected(self):
        source = parse(
            "program fig5():\n"
            "    if myrank % 2 == 0:\n"
            "        checkpoint\n"
            "        send(myrank + 1, 1)\n"
            "    else:\n"
            "        y = recv(myrank - 1)\n"
            "        checkpoint\n"
        )
        result = verify_program(source)
        assert not result.ok
        assert any(not v.uses_back_edge for v in result.violations)

    def test_back_edge_path_pattern_detected(self):
        """Figure 6's subtlety: the only path between the same-index
        checkpoints wraps around the loop's backward edge."""
        source = parse(
            "program fig6():\n"
            "    i = 0\n"
            "    while i < steps:\n"
            "        if myrank % 2 == 0:\n"
            "            checkpoint\n"
            "            send(myrank + 1, 1)\n"
            "            y = recv(myrank + 1)\n"
            "        else:\n"
            "            checkpoint\n"
            "            y = recv(myrank - 1)\n"
            "            send(myrank - 1, 2)\n"
            "        i = i + 1\n"
        )
        full = verify_program(source, include_back_edge_paths=True)
        same_iter = verify_program(source, include_back_edge_paths=False)
        assert not full.ok
        assert same_iter.ok
        assert all(v.uses_back_edge for v in full.violations)


class TestAlgorithm32:
    """Phase III turns Figure 2 into Figure 1 and the result survives
    failures with zero coordination."""

    def test_repair_produces_figure1(self):
        repaired = ensure_recovery_lines(jacobi_odd_even()).program
        assert ast_equal(repaired.body, jacobi().body)

    def test_repaired_program_runs_safely_under_failures(self):
        result = transform(jacobi_odd_even())
        baseline = Simulation(
            result.program, 4, params={"steps": 8}
        ).run()
        crashed = Simulation(
            result.program,
            4,
            params={"steps": 8},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=FailurePlan.single(9.7, 2),
        ).run()
        assert crashed.stats.completed
        assert crashed.stats.control_messages == 0
        assert crashed.final_env == baseline.final_env

    def test_transform_report_is_printable(self):
        result = transform(jacobi_odd_even())
        text = to_source(result.program)
        assert "checkpoint" in text
