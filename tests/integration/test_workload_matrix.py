"""The workload × protocol matrix under failure.

Systematic coverage: every standard workload, under every protocol,
with one injected mid-run crash, must (a) complete, (b) reach the same
final state as a failure-free run, and (c) respect its protocol's
coordination profile. This is the broadest single integration surface
in the suite.
"""

import pytest

from repro.bench.workloads import (
    run_protocol_comparison,
    standard_workloads,
    strip_checkpoints,
)
from repro.runtime import FailurePlan, Simulation

PROTOCOLS = ("appl-driven", "SaS", "C-L", "uncoordinated", "CIC-BCS",
             "msg-logging")
COORDINATION_FREE = {"appl-driven", "uncoordinated", "CIC-BCS", "msg-logging"}


def _workloads():
    return {w.name: w for w in standard_workloads(steps=10)}


@pytest.fixture(scope="module")
def matrix():
    """Run the full matrix once; tests inspect slices of it."""
    results = {}
    for name, spec in _workloads().items():
        bare = Simulation(
            strip_checkpoints(spec.make_program()),
            spec.n_processes,
            params=dict(spec.params),
        ).run()
        crash_time = bare.completion_time * 0.6
        rows = run_protocol_comparison(
            spec,
            period=max(2.0, bare.completion_time / 5),
            failure_plan=FailurePlan.single(crash_time, spec.n_processes - 1),
            protocols=PROTOCOLS,
        )
        results[name] = (bare, rows)
    return results


class TestMatrix:
    def test_every_cell_completes(self, matrix):
        incomplete = [
            (name, row.protocol)
            for name, (_, rows) in matrix.items()
            for row in rows
            if not row.completed
        ]
        assert incomplete == []

    def test_every_cell_recovered_exactly_once(self, matrix):
        wrong = [
            (name, row.protocol, row.rollbacks)
            for name, (_, rows) in matrix.items()
            for row in rows
            if row.failures != 1 or row.rollbacks != 1
        ]
        assert wrong == []

    def test_coordination_profiles(self, matrix):
        for name, (_, rows) in matrix.items():
            for row in rows:
                if row.protocol in COORDINATION_FREE:
                    assert row.control_messages == 0, (name, row.protocol)
                else:
                    assert row.control_messages > 0, (name, row.protocol)

    def test_appl_driven_never_forces_checkpoints(self, matrix):
        for name, (_, rows) in matrix.items():
            appl = next(r for r in rows if r.protocol == "appl-driven")
            assert appl.forced_checkpoints == 0, name

    def test_crash_really_happened_mid_run(self, matrix):
        for name, (bare, rows) in matrix.items():
            for row in rows:
                assert row.failures == 1, (name, row.protocol)
