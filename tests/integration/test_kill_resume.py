"""End-to-end kill-and-resume: SIGKILL a campaign, resume, byte-diff.

Drives ``tools/resume_smoke.py`` — the same script CI runs — which
starts a real ``repro campaign --jobs 2 --resume`` subprocess, SIGKILLs
its whole process group once the journal shows progress, re-runs it,
and asserts the resumed artifact is byte-identical to a clean serial
run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_tool():
    """Import tools/resume_smoke.py as a module."""
    spec = importlib.util.spec_from_file_location(
        "resume_smoke", REPO_ROOT / "tools" / "resume_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.skipif(
    not sys.platform.startswith("linux") and sys.platform != "darwin",
    reason="needs POSIX process groups (os.killpg)",
)
class TestKillAndResume:
    def test_sigkilled_campaign_resumes_byte_identical(self, capsys):
        tool = load_tool()
        assert tool.main(["--steps", "20", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "OK: resumed artifact byte-identical to clean run" in out
