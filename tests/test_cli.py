"""CLI tests (argument handling, exit codes, output shape)."""

import pytest

from repro.cli import main
from repro.lang.programs import JACOBI_ODD_EVEN_SOURCE


@pytest.fixture
def odd_even_file(tmp_path):
    path = tmp_path / "odd_even.mp"
    path.write_text(JACOBI_ODD_EVEN_SOURCE)
    return str(path)


class TestPrograms:
    def test_lists_shipped_programs(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "jacobi" in out
        assert "master_worker" in out


class TestVerify:
    def test_safe_program_exits_zero(self, capsys):
        assert main(["verify", "@jacobi"]) == 0
        assert "Condition 1 holds: True" in capsys.readouterr().out

    def test_unsafe_program_exits_one(self, capsys):
        assert main(["verify", "@jacobi_odd_even"]) == 1
        out = capsys.readouterr().out
        assert "Condition 1 holds: False" in out
        assert "violation" in out

    def test_loop_optimization_mode(self, capsys):
        assert main(["verify", "@jacobi", "--loop-optimization"]) == 0
        assert "loop-optimised" in capsys.readouterr().out

    def test_file_input(self, odd_even_file):
        assert main(["verify", odd_even_file]) == 1

    def test_missing_file(self, capsys):
        assert main(["verify", "/nonexistent/file.mp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_shipped_program(self, capsys):
        with pytest.raises(KeyError):
            main(["verify", "@nope"])


class TestTransform:
    def test_prints_safe_source(self, capsys):
        assert main(["transform", "@jacobi_odd_even"]) == 0
        captured = capsys.readouterr()
        assert "program jacobi_odd_even" in captured.out
        assert "phase III" in captured.err
        # the output must re-verify
        from repro.lang.parser import parse
        from repro.phases.verification import verify_program

        assert verify_program(parse(captured.out)).ok

    def test_writes_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "safe.mp"
        assert main(["transform", "@jacobi_odd_even", "-o", str(out_file)]) == 0
        assert out_file.exists()
        assert "checkpoint" in out_file.read_text()

    def test_insertion_for_plain_program(self, capsys):
        assert main(
            ["transform", "@jacobi_plain", "--steps", "10",
             "--checkpoint-overhead", "2.0", "--failure-rate", "0.05"]
        ) == 0
        captured = capsys.readouterr()
        assert "phase I" in captured.err
        assert "checkpoint" in captured.out


class TestCfg:
    def test_dot_output(self, capsys):
        assert main(["cfg", "@jacobi"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph jacobi")

    def test_extended_includes_message_edges(self, capsys):
        assert main(["cfg", "@jacobi", "--extended"]) == 0
        assert "style=dashed" in capsys.readouterr().out


class TestSimulate:
    def test_basic_run(self, capsys):
        assert main(["simulate", "@jacobi", "-n", "4", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "completed         : True" in out
        assert "straight cuts are recovery lines: True" in out

    def test_crash_and_recovery(self, capsys):
        assert main(
            ["simulate", "@jacobi", "-n", "4", "--steps", "6",
             "--crash", "7.0:2"]
        ) == 0
        out = capsys.readouterr().out
        assert "failures/rollbacks: 1/1" in out

    def test_spacetime_flag(self, capsys):
        assert main(
            ["simulate", "@jacobi", "-n", "4", "--steps", "3", "--spacetime"]
        ) == 0
        assert "legend:" in capsys.readouterr().out

    def test_protocol_choice(self, capsys):
        assert main(
            ["simulate", "@jacobi_plain", "-n", "4", "--steps", "6",
             "--protocol", "sas", "--period", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "control messages  : " in out
        ctl = int(out.split("control messages  : ")[1].splitlines()[0])
        assert ctl > 0

    def test_bad_crash_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "@jacobi", "--crash", "oops"])

    def test_deadlocking_program_reports_error(self, capsys, tmp_path):
        path = tmp_path / "deadlock.mp"
        path.write_text(
            "program dead():\n    y = recv((myrank + 1) % nprocs)\n"
        )
        assert main(["simulate", str(path), "-n", "2"]) == 2
        assert "error" in capsys.readouterr().err


class TestFigures:
    def test_both_tables(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Figure 9" in out
        assert "appl-driven" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "--figure", "9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 8" not in out
