"""CLI tests (argument handling, exit codes, output shape)."""

import pytest

from repro.cli import main
from repro.lang.programs import JACOBI_ODD_EVEN_SOURCE


@pytest.fixture
def odd_even_file(tmp_path):
    path = tmp_path / "odd_even.mp"
    path.write_text(JACOBI_ODD_EVEN_SOURCE)
    return str(path)


class TestPrograms:
    def test_lists_shipped_programs(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "jacobi" in out
        assert "master_worker" in out


class TestVerify:
    def test_safe_program_exits_zero(self, capsys):
        assert main(["verify", "@jacobi"]) == 0
        assert "Condition 1 holds: True" in capsys.readouterr().out

    def test_unsafe_program_exits_one(self, capsys):
        assert main(["verify", "@jacobi_odd_even"]) == 1
        out = capsys.readouterr().out
        assert "Condition 1 holds: False" in out
        assert "violation" in out

    def test_loop_optimization_mode(self, capsys):
        assert main(["verify", "@jacobi", "--loop-optimization"]) == 0
        assert "loop-optimised" in capsys.readouterr().out

    def test_file_input(self, odd_even_file):
        assert main(["verify", odd_even_file]) == 1

    def test_missing_file(self, capsys):
        assert main(["verify", "/nonexistent/file.mp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_shipped_program(self, capsys):
        with pytest.raises(KeyError):
            main(["verify", "@nope"])


class TestTransform:
    def test_prints_safe_source(self, capsys):
        assert main(["transform", "@jacobi_odd_even"]) == 0
        captured = capsys.readouterr()
        assert "program jacobi_odd_even" in captured.out
        assert "phase III" in captured.err
        # the output must re-verify
        from repro.lang.parser import parse
        from repro.phases.verification import verify_program

        assert verify_program(parse(captured.out)).ok

    def test_writes_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "safe.mp"
        assert main(["transform", "@jacobi_odd_even", "-o", str(out_file)]) == 0
        assert out_file.exists()
        assert "checkpoint" in out_file.read_text()

    def test_insertion_for_plain_program(self, capsys):
        assert main(
            ["transform", "@jacobi_plain", "--steps", "10",
             "--checkpoint-overhead", "2.0", "--failure-rate", "0.05"]
        ) == 0
        captured = capsys.readouterr()
        assert "phase I" in captured.err
        assert "checkpoint" in captured.out


class TestCfg:
    def test_dot_output(self, capsys):
        assert main(["cfg", "@jacobi"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph jacobi")

    def test_extended_includes_message_edges(self, capsys):
        assert main(["cfg", "@jacobi", "--extended"]) == 0
        assert "style=dashed" in capsys.readouterr().out


class TestSimulate:
    def test_basic_run(self, capsys):
        assert main(["simulate", "@jacobi", "-n", "4", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "completed         : True" in out
        assert "straight cuts are recovery lines: True" in out

    def test_crash_and_recovery(self, capsys):
        assert main(
            ["simulate", "@jacobi", "-n", "4", "--steps", "6",
             "--crash", "7.0:2"]
        ) == 0
        out = capsys.readouterr().out
        assert "failures/rollbacks: 1/1" in out

    def test_spacetime_flag(self, capsys):
        assert main(
            ["simulate", "@jacobi", "-n", "4", "--steps", "3", "--spacetime"]
        ) == 0
        assert "legend:" in capsys.readouterr().out

    def test_protocol_choice(self, capsys):
        assert main(
            ["simulate", "@jacobi_plain", "-n", "4", "--steps", "6",
             "--protocol", "sas", "--period", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "control messages  : " in out
        ctl = int(out.split("control messages  : ")[1].splitlines()[0])
        assert ctl > 0

    def test_bad_crash_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "@jacobi", "--crash", "oops"])

    def test_deadlocking_program_reports_error(self, capsys, tmp_path):
        path = tmp_path / "deadlock.mp"
        path.write_text(
            "program dead():\n    y = recv((myrank + 1) % nprocs)\n"
        )
        assert main(["simulate", str(path), "-n", "2"]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulateNetworkFaults:
    def test_network_faults_via_flags(self, capsys):
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3", "--steps", "8",
             "--fault", "drop:3.0:0:1",
             "--fault", "duplicate:5.0:1:2",
             "--fault", "delay:6.0:2:0:1.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "completed         : True" in out
        assert "network faults    : dropped=1" in out
        assert "retransmits=" in out

    def test_partition_heal_window(self, capsys):
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3", "--steps", "8",
             "--fault", "partition:8.0:0:2", "--fault", "heal:10.0:0:2"]
        ) == 0
        out = capsys.readouterr().out
        assert "transport         : frames=" in out

    def test_network_fault_rank_validated_against_n(self, capsys):
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3",
             "--fault", "drop:3.0:0:5"]
        ) == 2
        err = capsys.readouterr().err
        assert "channel 0->5" in err and "only 3 processes" in err

    def test_crash_rank_validated_against_n(self, capsys):
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3", "--crash", "5.0:7"]
        ) == 2
        err = capsys.readouterr().err
        assert "rank 7" in err and "only 3 processes" in err

    def test_storage_fault_rank_validated_against_n(self, capsys):
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3",
             "--fault", "bit-rot:5.0:6"]
        ) == 2
        assert "rank 6" in capsys.readouterr().err

    def test_bad_network_fault_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "@ring_pipeline", "--fault", "drop:oops:0:1"])

    def test_delay_without_duration_rejected(self, capsys):
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3",
             "--fault", "delay:3.0:0:1"]
        ) == 2
        assert "delay" in capsys.readouterr().err

    def test_fault_plan_json_network_faults(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"crashes": [{"time": 14.0, "rank": 1}],'
            ' "network_faults": [{"time": 3.0, "kind": "drop",'
            ' "src": 0, "dst": 1}]}'
        )
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3", "--steps", "8",
             "--fault-plan", str(plan)]
        ) == 0
        out = capsys.readouterr().out
        assert "network faults    : dropped=1" in out
        assert "failures/rollbacks: 1/1" in out

    def test_fault_plan_rejects_unknown_keys(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"netwrok_faults": []}')
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3",
             "--fault-plan", str(plan)]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown top-level key(s) ['netwrok_faults']" in err
        assert '"network_faults"' in err  # the expected schema is shown

    def test_fault_plan_rejects_unknown_network_kind(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"network_faults": [{"time": 1.0, "kind": "teleport",'
            ' "src": 0, "dst": 1}]}'
        )
        assert main(
            ["simulate", "@ring_pipeline", "-n", "3",
             "--fault-plan", str(plan)]
        ) == 2
        assert "teleport" in capsys.readouterr().err


class TestFigures:
    def test_both_tables(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Figure 9" in out
        assert "appl-driven" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "--figure", "9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 8" not in out
