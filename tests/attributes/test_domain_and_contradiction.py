"""Path-attribute and contradiction-checking tests."""

import pytest

from repro.attributes.contradiction import (
    CompatibilityReport,
    Universe,
    endpoints_compatible,
)
from repro.attributes.dataflow import classify_variables, single_assignments
from repro.attributes.domain import node_contexts
from repro.cfg import build_cfg
from repro.cfg.nodes import NodeKind
from repro.cfg.paths import acyclic_paths
from repro.lang.parser import parse
from repro.lang.programs import jacobi, ring_pipeline


def contexts_for(program):
    cfg = build_cfg(program)
    classes = classify_variables(program)
    paths = acyclic_paths(cfg)
    return cfg, node_contexts(cfg, paths, classes), single_assignments(program)


class TestNodeContexts:
    def test_every_send_recv_has_context(self):
        cfg, contexts, _ = contexts_for(jacobi())
        ids = {c.node_id for c in contexts}
        for node in cfg.send_nodes() + cfg.recv_nodes():
            assert node.node_id in ids

    def test_parity_constraint_recorded(self):
        _, contexts, defs = contexts_for(jacobi())
        sends = [c for c in contexts if c.kind is NodeKind.SEND]
        even_send = next(
            c for c in sends if c.admits_rank(0, 4, defs)
        )
        assert not even_send.admits_rank(1, 4, defs)

    def test_endpoint_value_evaluates(self):
        _, contexts, defs = contexts_for(jacobi())
        sends = [c for c in contexts if c.kind is NodeKind.SEND]
        even_send = next(c for c in sends if c.admits_rank(0, 4, defs))
        assert even_send.endpoint_value(0, 4, defs) == 1
        assert even_send.endpoint_value(2, 4, defs) == 3

    def test_neutral_loop_condition_not_a_constraint(self):
        _, contexts, defs = contexts_for(jacobi())
        # The while-loop condition (i < steps) must not restrict ranks.
        for ctx in contexts:
            for constraint in ctx.constraints:
                # every recorded constraint must be rank-decidable
                assert constraint.holds(0, 4, defs) is not None or True

    def test_rank_zero_branch(self):
        _, contexts, defs = contexts_for(ring_pipeline())
        recvs = [c for c in contexts if c.kind is NodeKind.RECV]
        rank0_recv = [c for c in recvs if c.admits_rank(0, 4, defs)]
        others = [c for c in recvs if c.admits_rank(2, 4, defs)]
        assert rank0_recv and others
        assert {c.node_id for c in rank0_recv}.isdisjoint(
            {c.node_id for c in others}
        )


class TestUniverse:
    def test_default_universe(self):
        assert Universe().sizes == tuple(range(2, 18))

    def test_invalid_universe_rejected(self):
        with pytest.raises(ValueError):
            Universe(sizes=())
        with pytest.raises(ValueError):
            Universe(sizes=(0,))


class TestEndpointCompatibility:
    def test_jacobi_even_send_matches_odd_recv(self):
        _, contexts, defs = contexts_for(jacobi())
        sends = [c for c in contexts if c.kind is NodeKind.SEND]
        recvs = [c for c in contexts if c.kind is NodeKind.RECV]
        even_send = next(c for c in sends if c.admits_rank(0, 4, defs))
        odd_recv = next(c for c in recvs if c.admits_rank(1, 4, defs))
        witness = endpoints_compatible(even_send, odd_recv, defs)
        assert witness is not None
        assert witness.sender % 2 == 0
        assert witness.receiver == witness.sender + 1

    def test_parity_contradiction_rejected(self):
        _, contexts, defs = contexts_for(jacobi())
        sends = [c for c in contexts if c.kind is NodeKind.SEND]
        recvs = [c for c in contexts if c.kind is NodeKind.RECV]
        even_send = next(c for c in sends if c.admits_rank(0, 4, defs))
        even_recv = next(c for c in recvs if c.admits_rank(0, 4, defs))
        # even sends to myrank+1 (odd); even receives from myrank+1 (odd
        # source) — the sender cannot be even. Contradiction.
        assert endpoints_compatible(even_send, even_recv, defs) is None

    def test_irregular_endpoint_matches_liberally(self):
        program = parse(
            "program t():\n"
            "    if myrank == 0:\n"
            "        send(input(target) % nprocs, 1)\n"
            "    else:\n"
            "        y = recv(0)\n"
        )
        _, contexts, defs = contexts_for(program)
        send = next(c for c in contexts if c.kind is NodeKind.SEND)
        recv = next(c for c in contexts if c.kind is NodeKind.RECV)
        assert endpoints_compatible(send, recv, defs) is not None

    def test_constant_endpoints_must_agree(self):
        program = parse(
            "program t():\n"
            "    if myrank == 0:\n"
            "        send(1, 7)\n"
            "    else:\n"
            "        y = recv(2)\n"
        )
        _, contexts, defs = contexts_for(program)
        send = next(c for c in contexts if c.kind is NodeKind.SEND)
        recv = next(c for c in contexts if c.kind is NodeKind.RECV)
        # send targets rank 1, but the recv names source rank 2 while
        # only non-zero ranks execute it; source 2 != sender 0.
        assert endpoints_compatible(send, recv, defs) is None

    def test_witness_is_concrete_and_valid(self):
        _, contexts, defs = contexts_for(ring_pipeline())
        sends = [c for c in contexts if c.kind is NodeKind.SEND]
        recvs = [c for c in contexts if c.kind is NodeKind.RECV]
        for send in sends:
            for recv in recvs:
                witness = endpoints_compatible(send, recv, defs)
                if witness is None:
                    continue
                assert 0 <= witness.sender < witness.nprocs
                assert 0 <= witness.receiver < witness.nprocs
                assert send.admits_rank(witness.sender, witness.nprocs, defs)
                assert recv.admits_rank(witness.receiver, witness.nprocs, defs)


class TestCompatibilityReport:
    def test_report_records_both_outcomes(self):
        report = CompatibilityReport()
        report.record(1, 2, None)
        from repro.attributes.contradiction import MatchWitness

        report.record(3, 4, MatchWitness(4, 0, 1))
        assert report.considered == [(1, 2), (3, 4)]
        assert report.contradicted == [(1, 2)]
        assert len(report.matched) == 1
