"""Abstract-evaluation tests, including agreement with the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attributes.expressions import abstract_eval
from repro.lang.parser import parse


def expr(text: str):
    return parse(f"program t():\n    x = {text}\n").body.statements[0].value


def ev(text, rank=0, nprocs=4, defs=None):
    return abstract_eval(expr(text), rank, nprocs, defs)


class TestConcreteEvaluation:
    def test_constants(self):
        assert ev("42") == 42
        assert ev("True") == 1

    def test_myrank_nprocs(self):
        assert ev("myrank", rank=3) == 3
        assert ev("nprocs", nprocs=8) == 8

    def test_arithmetic(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("(2 + 3) * 4") == 20
        assert ev("-5 + 2") == -3
        assert ev("7 // 2") == 3
        assert ev("7 % 3") == 1

    def test_comparisons(self):
        assert ev("myrank % 2 == 0", rank=2) == 1
        assert ev("myrank % 2 == 0", rank=3) == 0
        assert ev("myrank < nprocs - 1", rank=3, nprocs=4) == 0

    def test_boolean_operators(self):
        assert ev("1 and 0") == 0
        assert ev("0 or 1") == 1
        assert ev("not 0") == 1

    def test_builtin_min_max_abs(self):
        assert ev("min(3, myrank)", rank=1) == 1
        assert ev("max(3, myrank)", rank=1) == 3
        assert ev("abs(0 - 4)") == 4


class TestUnknownPropagation:
    def test_input_is_unknown(self):
        assert ev("input(noise)") is None

    def test_unknown_propagates_through_arithmetic(self):
        assert ev("input(noise) + 1") is None
        assert ev("myrank * input(noise)") is None

    def test_unbound_name_unknown(self):
        assert ev("mystery") is None

    def test_short_circuit_and_with_known_false(self):
        assert ev("0 and input(noise)") == 0

    def test_short_circuit_or_with_known_true(self):
        assert ev("1 or input(noise)") == 1

    def test_unknown_boolean_stays_unknown(self):
        assert ev("1 and input(noise)") is None
        assert ev("0 or input(noise)") is None

    def test_division_by_zero_unknown(self):
        assert ev("5 // 0") is None
        assert ev("5 % 0") is None

    def test_opaque_builtin_unknown(self):
        assert ev("combine(1, 2)") is None


class TestDefinitionInlining:
    def test_inline_simple_definition(self):
        program = parse(
            "program t():\n    peer = myrank + 1\n    send(peer, 0)\n"
        )
        defs = {"peer": program.body.statements[0].value}
        dest = program.body.statements[1].dest
        assert abstract_eval(dest, 2, 4, defs) == 3

    def test_inline_chains(self):
        a = expr("myrank * 2")
        b = expr("a + 1")
        defs = {"a": a, "b": b}
        assert abstract_eval(expr("b"), 3, 8, defs) == 7

    def test_self_reference_bounded(self):
        looping = expr("a + 1")
        defs = {"a": looping}
        assert abstract_eval(expr("a"), 0, 4, defs) is None


class TestAgreementWithInterpreter:
    """abstract_eval on closed expressions must agree with the runtime
    interpreter's evaluator — two independent implementations."""

    @settings(max_examples=60, deadline=None)
    @given(
        rank=st.integers(min_value=0, max_value=7),
        a=st.integers(min_value=0, max_value=50),
        b=st.integers(min_value=1, max_value=50),
        op=st.sampled_from(["+", "-", "*", "//", "%", "==", "<", ">="]),
    )
    def test_binop_agreement(self, rank, a, b, op):
        from repro.runtime.interpreter import ProcessInterpreter

        text = f"(myrank + {a}) {op} {b}"
        static = ev(text, rank=rank, nprocs=8)
        interp = ProcessInterpreter(
            parse(f"program t():\n    x = {text}\n"), rank, 8
        )
        while interp.step() is not None:
            pass
        assert static == interp.env["x"]
