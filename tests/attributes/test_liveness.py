"""Per-checkpoint liveness: the analysis behind pruned snapshots.

The safety contract under test: a variable may be reported dead at a
checkpoint only when every path from that checkpoint to exit rewrites
it before any read — including the implicit read of *everything* at
exit (the simulator observes complete final environments).
"""

from repro.attributes.liveness import (
    checkpoint_dead_sets,
    checkpoint_liveness,
    program_variables,
)
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.programs import stencil_halo, token_ring


def checkpoint_ids(program):
    return [
        node.node_id
        for node in ast.walk(program)
        if isinstance(node, ast.Checkpoint)
    ]


class TestUniverse:
    def test_collects_targets_counters_and_reads(self):
        program = parse(
            "program u():\n"
            "    x = 1\n"
            "    for k in range(n):\n"
            "        y = x + k\n"
            "    checkpoint\n"
        )
        assert program_variables(program) == {"x", "k", "y", "n"}

    def test_unmentioned_parameters_are_outside(self):
        # `steps` is a run-time parameter the text never mentions: the
        # analysis cannot prove anything about it, so it is not in the
        # universe and can never be pruned.
        program = parse(
            "program u():\n"
            "    x = 1\n"
            "    checkpoint\n"
        )
        assert program_variables(program) == {"x"}


class TestSafety:
    def test_variable_read_later_is_live(self):
        program = parse(
            "program p():\n"
            "    x = 1\n"
            "    y = 2\n"
            "    checkpoint\n"
            "    y = x + 1\n"
        )
        [cp] = checkpoint_ids(program)
        result = checkpoint_liveness(program)
        assert "x" in result.live_out[cp]
        # y is rewritten before any read on the only path to exit.
        assert "y" in result.dead[cp]

    def test_exit_uses_everything(self):
        # x is never read again — but it is never rewritten either, so
        # its value is observable in the final environment and must
        # stay live (the paper-level byte-identity convention).
        program = parse(
            "program p():\n"
            "    x = 1\n"
            "    checkpoint\n"
            "    y = 2\n"
        )
        [cp] = checkpoint_ids(program)
        result = checkpoint_liveness(program)
        assert "x" in result.live_out[cp]
        assert "y" in result.dead[cp]

    def test_branch_keeps_conditionally_read_variables_live(self):
        # One arm reads x before the rewrite: may-liveness keeps it.
        program = parse(
            "program p():\n"
            "    x = 1\n"
            "    checkpoint\n"
            "    if flag > 0:\n"
            "        y = x\n"
            "    x = 2\n"
            "    y = 3\n"
        )
        [cp] = checkpoint_ids(program)
        result = checkpoint_liveness(program)
        assert "x" in result.live_out[cp]

    def test_loop_back_edge_reaches_uses(self):
        # The checkpoint sits inside the loop: i is read by the header
        # on the back edge, so it is live even though the body rewrites
        # it right after the checkpoint.
        program = parse(
            "program p():\n"
            "    i = 0\n"
            "    while i < steps:\n"
            "        checkpoint\n"
            "        i = i + 1\n"
        )
        [cp] = checkpoint_ids(program)
        result = checkpoint_liveness(program)
        assert "i" in result.live_out[cp]

    def test_send_value_is_a_use(self):
        program = parse(
            "program p():\n"
            "    x = 1\n"
            "    checkpoint\n"
            "    send(0, x)\n"
            "    x = 2\n"
        )
        [cp] = checkpoint_ids(program)
        assert "x" in checkpoint_liveness(program).live_out[cp]

    def test_live_and_dead_partition_the_universe(self):
        program = stencil_halo()
        result = checkpoint_liveness(program)
        for cp in checkpoint_ids(program):
            assert result.live_out[cp] | result.dead[cp] == result.variables
            assert not result.live_out[cp] & result.dead[cp]


class TestWorkloads:
    def test_stencil_halo_scratch_pipeline_is_dead(self):
        # The headline pruning case: the g*/a* relaxation temporaries
        # and the halo are fully rewritten every iteration before any
        # read, so at the loop-top checkpoint only x, i (and the steps
        # parameter, if mentioned) survive.
        program = stencil_halo()
        result = checkpoint_liveness(program)
        [cp] = checkpoint_ids(program)
        dead = result.dead[cp]
        assert {"halo"} <= dead
        assert {f"g{k}" for k in range(16)} <= dead
        assert {f"a{k}" for k in range(16)} <= dead
        assert "x" in result.live_out[cp]
        assert "i" in result.live_out[cp]

    def test_token_ring_prunes_only_the_token(self):
        # Both branch arms rewrite `token` before any read (init or
        # recv comes first), so it is provably dead at the loop-top
        # checkpoint; the loop counter is not. One small variable is
        # also why token_ring sees only a modest payload reduction.
        program = token_ring()
        [dead] = checkpoint_dead_sets(program).values()
        assert dead == {"token"}

    def test_dead_sets_shorthand_matches_full_result(self):
        program = stencil_halo()
        assert checkpoint_dead_sets(program) == checkpoint_liveness(
            program
        ).dead
