"""ID-dependence and irregularity dataflow tests."""

from repro.attributes.dataflow import (
    ConditionClass,
    classify_condition,
    classify_variables,
    single_assignments,
)
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


def expr(text: str):
    return program(f"cond = {text}").body.statements[-1].value


class TestVariableClasses:
    def test_direct_rank_dependence(self):
        classes = classify_variables(program("peer = myrank + 1"))
        assert "peer" in classes.rank_dependent

    def test_transitive_rank_dependence(self):
        classes = classify_variables(program("a = myrank\nb = a * 2\nc = b - 1"))
        assert {"a", "b", "c"} <= classes.rank_dependent

    def test_nprocs_alone_not_rank_dependent(self):
        classes = classify_variables(program("count = nprocs - 1"))
        assert "count" not in classes.rank_dependent

    def test_input_makes_irregular(self):
        classes = classify_variables(program("r = input(route)"))
        assert "r" in classes.irregular

    def test_recv_target_is_irregular(self):
        classes = classify_variables(program("y = recv(0)"))
        assert "y" in classes.irregular

    def test_bcast_target_is_irregular(self):
        classes = classify_variables(program("y = bcast(0, 1)"))
        assert "y" in classes.irregular

    def test_irregularity_propagates(self):
        classes = classify_variables(
            program("y = recv(0)\nz = y + 1\nw = z * 2")
        )
        assert {"y", "z", "w"} <= classes.irregular

    def test_mixed_rank_and_input(self):
        classes = classify_variables(program("k = myrank + input(x)"))
        assert "k" in classes.rank_dependent
        assert "k" in classes.irregular

    def test_counter_is_neutral(self):
        classes = classify_variables(program("i = 0\ni = i + 1"))
        assert "i" not in classes.rank_dependent
        assert "i" not in classes.irregular


class TestConditionClassification:
    def test_rank_condition(self):
        classes = classify_variables(program("pass"))
        assert (
            classify_condition(expr("myrank % 2 == 0"), classes)
            is ConditionClass.ID_DEPENDENT
        )

    def test_counter_condition_neutral(self):
        prog = program("i = 0\nwhile i < 10:\n    i = i + 1")
        classes = classify_variables(prog)
        cond = prog.body.statements[1].cond
        assert classify_condition(cond, classes) is ConditionClass.NEUTRAL

    def test_nprocs_condition_neutral(self):
        classes = classify_variables(program("pass"))
        assert (
            classify_condition(expr("nprocs > 4"), classes)
            is ConditionClass.NEUTRAL
        )

    def test_irregular_dominates_rank(self):
        prog = program("r = input(route)\nif myrank == r:\n    pass")
        classes = classify_variables(prog)
        cond = prog.body.statements[1].cond
        assert classify_condition(cond, classes) is ConditionClass.IRREGULAR

    def test_derived_rank_condition(self):
        prog = program("peer = myrank + 1\nif peer < nprocs:\n    pass")
        classes = classify_variables(prog)
        cond = prog.body.statements[1].cond
        assert classify_condition(cond, classes) is ConditionClass.ID_DEPENDENT

    def test_received_value_condition_irregular(self):
        prog = program("y = recv(0)\nif y > 5:\n    pass")
        classes = classify_variables(prog)
        cond = prog.body.statements[1].cond
        assert classify_condition(cond, classes) is ConditionClass.IRREGULAR


class TestSingleAssignments:
    def test_single_assignment_captured(self):
        defs = single_assignments(program("peer = myrank + 1"))
        assert "peer" in defs
        assert isinstance(defs["peer"], ast.BinOp)

    def test_reassigned_variable_excluded(self):
        defs = single_assignments(program("i = 0\ni = i + 1"))
        assert "i" not in defs

    def test_recv_bound_variable_excluded(self):
        defs = single_assignments(program("y = 1\ny = recv(0)"))
        assert "y" not in defs

    def test_for_variable_excluded(self):
        defs = single_assignments(
            program("for k in range(3):\n    compute(k)\nk = 5")
        )
        assert "k" not in defs

    def test_independent_variables_both_captured(self):
        defs = single_assignments(program("a = 1\nb = myrank"))
        assert set(defs) == {"a", "b"}
