"""Tests for the perf-record schema and the hot-path microbenchmarks.

The timing loops themselves are exercised at tiny sizes (one repeat,
small inputs) — CI's real perf gate is ``tools/perf_smoke.py``; these
tests pin the record schema, the JSON round-trip, and the benchmark
plumbing that the smoke and ``tools/regenerate_results.py`` rely on.
"""

import json

import pytest

from repro.bench.record import (
    BenchCase,
    BenchReport,
    load_report,
    write_report,
)
from repro.bench.transform_hotpath import (
    branchy_program,
    format_transform_hotpath,
    transform_hotpath_report,
)
from repro.cfg import build_cfg, enumerate_checkpoints


def sample_report():
    return BenchReport(
        benchmark="sample",
        cases=(
            BenchCase("fast", 1.0, 0.25, 100, True),
            BenchCase("faster", 3.0, 0.5, 200, True),
        ),
    )


class TestRecordSchema:
    def test_speedup_and_min(self):
        report = sample_report()
        assert report.cases[0].speedup == 4.0
        assert report.cases[1].speedup == 6.0
        assert report.min_speedup == 4.0

    def test_zero_time_guard(self):
        case = BenchCase("degenerate", 1.0, 0.0, 1, True)
        assert case.speedup == float("inf")

    def test_json_round_trip(self, tmp_path):
        report = sample_report()
        path = write_report(report, tmp_path)
        assert path.name == "BENCH_sample.json"
        loaded = load_report(path)
        assert loaded.benchmark == "sample"
        assert [c.name for c in loaded.cases] == ["fast", "faster"]
        assert loaded.min_speedup == pytest.approx(report.min_speedup)

    def test_json_fields(self, tmp_path):
        path = write_report(sample_report(), tmp_path)
        data = json.loads(path.read_text())
        assert data["min_speedup"] == 4.0
        case = data["cases"][0]
        assert set(case) == {
            "name", "reference_wall_s", "optimized_wall_s", "speedup",
            "ops", "ops_per_sec", "identical",
        }


class TestTransformBench:
    def test_branchy_program_shape(self):
        enumeration = enumerate_checkpoints(build_cfg(branchy_program(5)))
        assert enumeration.balanced
        assert enumeration.depth == 5
        assert len(enumeration.per_path) == 2**5

    def test_report_runs_and_agrees(self):
        report = transform_hotpath_report(repeats=1)
        assert report.benchmark == "transform"
        assert all(case.identical for case in report.cases)
        names = [case.name for case in report.cases]
        assert "ast_clone_vs_deepcopy" in names
        table = format_transform_hotpath(report)
        assert "identical" in table and "True" in table


class TestResultsRegistry:
    def test_bench_generators_registered(self):
        from repro.bench.results import RESULT_GENERATORS

        assert "bench_engine" in RESULT_GENERATORS
        assert "bench_transform" in RESULT_GENERATORS
