"""Bench-harness unit tests (table formatting and shape checks)."""

from repro.analysis.comparison import figure8_series, figure9_series
from repro.analysis.parameters import ProtocolKind
from repro.bench.figures import (
    figure8_table,
    figure9_table,
    format_curves,
    shape_check_figure8,
    shape_check_figure9,
)


class TestTables:
    def test_figure8_table_has_all_columns(self):
        table = figure8_table()
        header = table.splitlines()[0]
        for kind in ProtocolKind:
            assert kind.value in header

    def test_figure8_table_row_per_process_count(self):
        table = figure8_table(process_counts=(16, 32, 64))
        assert len(table.splitlines()) == 2 + 3

    def test_figure9_table_sweeps_setup_times(self):
        table = figure9_table(setup_times=(0.0, 0.01))
        assert len(table.splitlines()) == 2 + 2

    def test_format_curves_aligned(self):
        table = format_curves(figure8_series(), x_label="n")
        widths = {len(line) for line in table.splitlines() if line.strip()}
        assert len(widths) == 1  # perfectly rectangular


class TestShapeChecks:
    def test_default_parameters_pass_both(self):
        assert shape_check_figure8(figure8_series()) == []
        assert shape_check_figure9(figure9_series()) == []

    def test_figure8_detects_wrong_order(self):
        curves = figure8_series()
        swapped = {
            ProtocolKind.APPLICATION_DRIVEN: curves[ProtocolKind.CHANDY_LAMPORT],
            ProtocolKind.SYNC_AND_STOP: curves[ProtocolKind.SYNC_AND_STOP],
            ProtocolKind.CHANDY_LAMPORT: curves[ProtocolKind.APPLICATION_DRIVEN],
        }
        assert shape_check_figure8(swapped)

    def test_figure9_detects_varying_appl_curve(self):
        curves = figure9_series()
        tampered = dict(curves)
        tampered[ProtocolKind.APPLICATION_DRIVEN] = curves[
            ProtocolKind.SYNC_AND_STOP
        ]
        assert shape_check_figure9(tampered)
