"""End-to-end tracing tests: determinism, reconstruction, exports.

The load-bearing guarantees of the observability subsystem:

- **determinism** — same (program, seed, fault plan) twice produces a
  byte-identical JSONL event log;
- **zero perturbation** — attaching an observer changes nothing about
  the simulated execution;
- **reconstruction** — the engine's :class:`ExecutionTrace` is fully
  recoverable from the event log alone, so space-time diagrams and
  causality analyses work offline;
- **Chrome export** — the converted trace is a valid trace-event file.
"""

import json

from repro.lang.programs import ring_pipeline
from repro.obs import (
    Observability,
    chrome_trace,
    read_event_log,
    trace_from_events,
)
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.export import trace_to_json
from repro.viz import render_spacetime, render_spacetime_from_log

PROGRAM = ring_pipeline()


def _traced_run(plan=None, steps=6):
    obs = Observability()
    result = Simulation(
        PROGRAM,
        3,
        params={"steps": steps},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=plan,
        seed=0,
        observer=obs.bus,
    ).run()
    return obs, result


class TestDeterminism:
    """Byte-identical replays produce byte-identical traces."""

    def test_same_seed_same_plan_byte_identical_jsonl(self):
        plan = FailurePlan.single(12.0, 1)
        obs_a, _ = _traced_run(plan)
        obs_b, _ = _traced_run(plan)
        assert obs_a.jsonl() == obs_b.jsonl()

    def test_different_plan_differs(self):
        obs_a, _ = _traced_run(FailurePlan.single(12.0, 1))
        obs_b, _ = _traced_run(None)
        assert obs_a.jsonl() != obs_b.jsonl()

    def test_observer_does_not_perturb_the_run(self):
        plan = FailurePlan.single(12.0, 1)
        _, traced = _traced_run(plan)
        untraced = Simulation(
            PROGRAM,
            3,
            params={"steps": 6},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=plan,
            seed=0,
        ).run()
        assert trace_to_json(traced.trace) == trace_to_json(untraced.trace)
        assert traced.stats.as_dict() == untraced.stats.as_dict()
        assert traced.final_env == untraced.final_env

    def test_no_wall_clock_in_events(self):
        obs, result = _traced_run()
        horizon = result.completion_time
        for event in obs.events:
            assert 0.0 <= event.time <= horizon + 1e-9


class TestVectorClockStamping:
    """Happened-before is recoverable from the log alone."""

    def test_every_ranked_event_is_stamped(self):
        obs, _ = _traced_run(FailurePlan.single(12.0, 1))
        ranked = [e for e in obs.events if e.rank is not None]
        assert ranked
        assert all(e.clock is not None for e in ranked)

    def test_send_happens_before_matching_recv(self):
        from repro.causality.vector_clock import VectorClock

        obs, _ = _traced_run()
        sends = {
            e.fields.get("message_id"): e
            for e in obs.events
            if e.category == "engine" and e.name == "send"
        }
        recvs = [
            e for e in obs.events
            if e.category == "engine" and e.name == "recv"
        ]
        assert recvs
        for recv in recvs:
            send = sends[recv.fields["message_id"]]
            assert VectorClock(send.clock).happened_before(
                VectorClock(recv.clock)
            )


class TestReconstruction:
    """The ExecutionTrace round-trips through the event log."""

    def test_trace_from_events_round_trip(self):
        obs, result = _traced_run(FailurePlan.single(12.0, 1))
        rebuilt = trace_from_events(obs.events)
        assert trace_to_json(rebuilt) == trace_to_json(result.trace)

    def test_round_trip_through_file(self, tmp_path):
        obs, result = _traced_run()
        path = tmp_path / "events.jsonl"
        path.write_text(obs.jsonl())
        rebuilt = trace_from_events(read_event_log(path))
        assert trace_to_json(rebuilt) == trace_to_json(result.trace)

    def test_spacetime_from_log_matches_live_render(self, tmp_path):
        obs, result = _traced_run()
        path = tmp_path / "events.jsonl"
        path.write_text(obs.jsonl())
        offline = render_spacetime_from_log(path)
        live = render_spacetime(
            result.trace, cuts=result.trace.all_straight_cuts()
        )
        assert offline == live
        assert "#" in offline  # recovery-line members are marked


class TestChromeExport:
    """The Chrome trace-event conversion is well-formed."""

    def test_chrome_trace_shape(self):
        obs, _ = _traced_run()
        doc = chrome_trace(obs.events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        payload = json.dumps(doc)  # must be JSON-serialisable
        assert json.loads(payload) == doc
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(obs.events)
        for entry in instants:
            assert entry["ts"] >= 0
            assert isinstance(entry["tid"], int)
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert {"P0", "P1", "P2"} <= names


class TestStats:
    """SimulationStats surfaces the degraded-recovery summary."""

    def test_max_fallback_depth(self):
        from repro.runtime.engine import SimulationStats

        stats = SimulationStats()
        assert stats.max_fallback_depth == 0
        stats.fallback_depths.extend([0, 2, 1])
        assert stats.max_fallback_depth == 2
        assert stats.as_dict()["max_fallback_depth"] == 2

    def test_as_dict_includes_transport_and_fallback_counters(self):
        _, result = _traced_run(FailurePlan.single(12.0, 1))
        data = result.stats.as_dict()
        for key in (
            "frames_sent", "retransmits", "ack_frames",
            "recovery_fallbacks", "max_fallback_depth", "rollbacks",
        ):
            assert key in data
        assert json.dumps(data)  # JSON-serialisable
