"""CLI tests of the observability surface.

Covers ``simulate --trace-out/--metrics-out/--stats-json``, the
``repro trace`` subcommand in all four formats plus query mode,
``repro metrics diff``, ``repro chaos`` with automatic artifact
dumping, and the campaign telemetry flags
(``--metrics-out``/``--progress``/``--spans-out``).
"""

import json

from repro.cli import main
from repro.obs import read_event_log


def _capture(tmp_path, extra=()):
    log = tmp_path / "events.jsonl"
    code = main([
        "simulate", "@ring_pipeline", "-n", "3", "--steps", "5",
        "--crash", "10:1", "--trace-out", str(log), *extra,
    ])
    return code, log


class TestSimulateFlags:
    def test_trace_out_writes_jsonl(self, tmp_path):
        code, log = _capture(tmp_path)
        assert code == 0
        events = read_event_log(log)
        assert events
        categories = {e.category for e in events}
        assert {"engine", "transport", "storage"} <= categories

    def test_trace_out_is_deterministic(self, tmp_path):
        # Statement IDs come from a process-global counter, so
        # byte-identity is a *replay* property: two fresh processes
        # running the same (program, seed, plan) must agree exactly.
        import subprocess
        import sys

        logs = []
        for name in ("a.jsonl", "b.jsonl"):
            log = tmp_path / name
            subprocess.run(
                [
                    sys.executable, "-m", "repro", "simulate",
                    "@ring_pipeline", "-n", "3", "--steps", "5",
                    "--crash", "10:1", "--trace-out", str(log),
                ],
                check=True, capture_output=True,
            )
            logs.append(log.read_bytes())
        assert logs[0] == logs[1]
        assert logs[0]  # non-empty

    def test_metrics_out(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        code, _ = _capture(tmp_path, ("--metrics-out", str(metrics)))
        assert code == 0
        data = json.loads(metrics.read_text())
        assert data["events_total"]["type"] == "counter"
        assert "checkpoint_latency" in data
        assert "recovery_line_lag" in data

    def test_stats_json_file(self, tmp_path):
        stats = tmp_path / "stats.json"
        code = main([
            "simulate", "@ring_pipeline", "-n", "3", "--steps", "5",
            "--stats-json", str(stats),
        ])
        assert code == 0
        data = json.loads(stats.read_text())
        assert data["completed"] is True
        assert "frames_sent" in data
        assert "max_fallback_depth" in data

    def test_stats_json_stdout(self, capsys):
        code = main([
            "simulate", "@ring_pipeline", "-n", "3", "--steps", "5",
            "--stats-json", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        assert json.loads(payload)["completed"] is True


class TestTraceSubcommand:
    def test_summary(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(log)]) == 0
        out = capsys.readouterr().out
        assert "vector clock: every ranked event stamped" in out
        assert "engine.checkpoint" in out

    def test_chrome(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        out_file = tmp_path / "chrome.json"
        assert main([
            "trace", str(log), "--format", "chrome", "-o", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e.get("ph") == "i" for e in doc["traceEvents"])

    def test_jsonl_round_trip(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(log), "--format", "jsonl"]) == 0
        assert capsys.readouterr().out == log.read_text()

    def test_spacetime(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(log), "--format", "spacetime"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("P0 |")
        assert "legend:" in out

    def test_missing_log_is_a_clean_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestTraceQuery:
    def test_query_lists_matching_events(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "query", str(log), "--rank", "1",
            "--category", "engine",
        ]) == 0
        out = capsys.readouterr().out
        assert out
        for line in out.splitlines():
            assert " r1 " in line
            assert "engine." in line

    def test_query_time_window(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "query", str(log), "--since", "100", "--until", "200",
        ]) == 0
        assert capsys.readouterr().out == "no events matched\n"

    def test_query_span_filter(self, tmp_path, capsys):
        # The crash at t=10 produces a recovery.attempt span; events
        # inside its sim-time interval (plus the span event) match.
        _, log = _capture(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "query", str(log), "--span", "recovery.attempt",
        ]) == 0
        out = capsys.readouterr().out
        assert "span.recovery.attempt" in out

    def test_query_without_log_is_a_clean_error(self, capsys):
        assert main(["trace", "query"]) == 2
        assert "error" in capsys.readouterr().err

    def test_filters_compose_with_formats(self, tmp_path, capsys):
        _, log = _capture(tmp_path)
        out_file = tmp_path / "span.chrome.json"
        assert main([
            "trace", str(log), "--category", "span",
            "--format", "chrome", "-o", str(out_file),
        ]) == 0
        doc = json.loads(out_file.read_text())
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert complete
        assert all(e["name"] == "recovery.attempt" for e in complete)


class TestMetricsDiff:
    def _write(self, tmp_path, name, value):
        path = tmp_path / name
        path.write_text(json.dumps({
            "speedup": {"type": "gauge", "value": value},
        }))
        return str(path)

    def test_identical_files_pass(self, tmp_path, capsys):
        before = self._write(tmp_path, "a.json", 4.0)
        assert main(["metrics", "diff", before, before]) == 0
        assert "OK: 0 of" in capsys.readouterr().out

    def test_threshold_trips_and_names_worst(self, tmp_path, capsys):
        before = self._write(tmp_path, "a.json", 4.0)
        after = self._write(tmp_path, "b.json", 1.0)
        assert main([
            "metrics", "diff", before, after,
            "--threshold", "speedup:min=0.5",
        ]) == 1
        out = capsys.readouterr().out
        assert "worst regression: speedup (4 -> 1, ratio 0.250)" in out

    def test_default_bounds_apply_everywhere(self, tmp_path):
        before = self._write(tmp_path, "a.json", 2.0)
        after = self._write(tmp_path, "b.json", 10.0)
        assert main([
            "metrics", "diff", before, after, "--default-max", "2.0",
        ]) == 1

    def test_bad_threshold_rule_is_a_clean_error(self, tmp_path, capsys):
        before = self._write(tmp_path, "a.json", 1.0)
        assert main([
            "metrics", "diff", before, before, "--threshold", "nonsense",
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestCampaignTelemetry:
    def test_rollup_progress_and_spans(self, tmp_path, capsys):
        metrics = tmp_path / "campaign_metrics.json"
        spans = tmp_path / "spans.json"
        assert main([
            "campaign", "@quick", "--jobs", "1",
            "--metrics-out", str(metrics), "--progress",
            "--spans-out", str(spans),
        ]) == 0
        captured = capsys.readouterr()
        # Progress went to stderr, line-oriented.
        assert "campaign:" in captured.err
        assert "campaign done:" in captured.err
        rollup = json.loads(metrics.read_text())
        assert rollup["rollup_schema_version"] == 1
        assert rollup["aggregate"]["stats.completed"]["value"] > 0
        assert rollup["diagnostics"]["jobs"] == 1
        doc = json.loads(spans.read_text())
        names = {
            e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert {"cell.attempt", "cell", "campaign.merge"} <= names


class TestChaosSubcommand:
    def test_healthy_sweep_passes(self, capsys):
        assert main([
            "chaos", "--seeds", "2", "--protocol", "appl-driven",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s), 0 failure(s)" in out

    def test_broken_transport_fails_and_dumps(self, tmp_path, capsys):
        art = tmp_path / "artifacts"
        code = main([
            "chaos", "--seeds", "1", "--protocol", "appl-driven",
            "--broken-transport", "--artifacts", str(art),
        ])
        out = capsys.readouterr().out
        if code == 0:  # this seed happened to survive dedup=False
            assert "0 failure(s)" in out
            return
        assert code == 1
        dumped = sorted(p.name for p in art.iterdir())
        assert any(name.endswith(".flight.jsonl") for name in dumped)
        assert any(name.endswith(".schedule.json") for name in dumped)
        # The dump is convertible by the trace subcommand.
        flight = next(p for p in art.iterdir()
                      if p.name.endswith(".flight.jsonl"))
        chrome_out = tmp_path / "flight.chrome.json"
        assert main([
            "trace", str(flight), "--format", "chrome",
            "-o", str(chrome_out),
        ]) == 0
        assert json.loads(chrome_out.read_text())["traceEvents"]
