"""Diff engine, log queries, progress reporting, and schema versions."""

import io
import json

import pytest

from repro.obs import (
    EVENT_LOG_SCHEMA_VERSION,
    ObsEvent,
    ProgressEvent,
    ProgressReporter,
    SchemaVersionError,
    Threshold,
    diff_metrics,
    event_log_header,
    filter_events,
    flatten_metrics,
    format_diff,
)
from repro.obs.diff import load_metrics, parse_threshold_rule
from repro.obs.export import events_to_jsonl, read_event_log
from repro.obs.query import format_events, span_intervals


def event(seq, category, name, rank=None, time=0.0, **fields):
    return ObsEvent(
        seq=seq, category=category, name=name, rank=rank, time=time,
        clock=None, fields=fields,
    )


class TestFlatten:
    """flatten_metrics sniffs all three supported schemas."""

    def test_registry_dump(self):
        flat = flatten_metrics({
            "frames_total": {"type": "counter", "value": 7},
            "retransmit_rate": {"type": "gauge", "value": 0.25},
            "latency": {
                "type": "histogram", "count": 2, "sum": 3.0,
                "mean": 1.5, "min": 1.0, "max": 2.0,
            },
        })
        assert flat["frames_total"] == 7.0
        assert flat["retransmit_rate"] == 0.25
        assert flat["latency.count"] == 2.0
        assert flat["latency.mean"] == 1.5

    def test_empty_histogram_skips_none_components(self):
        flat = flatten_metrics({
            "h": {"type": "histogram", "count": 0, "sum": 0.0,
                  "mean": 0.0, "min": None, "max": None},
        })
        assert "h.min" not in flat
        assert flat["h.count"] == 0.0

    def test_rollup_uses_aggregate_section(self):
        flat = flatten_metrics({
            "rollup_schema_version": 1,
            "aggregate": {"stats.checkpoints": {
                "type": "counter", "value": 9,
            }},
            "per_cell": {},
            "diagnostics": {"jobs": 4},
        })
        assert flat == {"stats.checkpoints": 9.0}

    def test_bench_report(self):
        flat = flatten_metrics({
            "benchmark": "engine_hotpath",
            "min_speedup": 2.0,
            "cases": [{
                "name": "stencil", "speedup": 3.5, "identical": True,
                "ops_per_sec": 1000.0,
            }],
        })
        assert flat["case.stencil.speedup"] == 3.5
        assert flat["case.stencil.identical"] == 1.0
        assert flat["case.stencil.ops_per_sec"] == 1000.0
        assert flat["min_speedup"] == 2.0

    def test_unknown_metric_type_raises(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            flatten_metrics({"m": {"type": "summary", "value": 1}})

    def test_load_metrics_reads_files(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "c": {"type": "counter", "value": 3},
        }))
        assert load_metrics(path) == {"c": 3.0}


class TestDiff:
    """Threshold resolution, ratios, and the worst-regression pick."""

    def test_no_thresholds_never_fails(self):
        report = diff_metrics({"a": 1.0}, {"a": 100.0})
        assert report.ok
        assert report.deltas[0].ratio == 100.0

    def test_min_ratio_floor(self):
        report = diff_metrics(
            {"speedup": 4.0}, {"speedup": 1.0},
            rules=[("speedup", Threshold(min_ratio=0.5))],
        )
        assert not report.ok
        (failure,) = report.failures
        assert "below floor" in failure.reason

    def test_max_ratio_ceiling(self):
        report = diff_metrics(
            {"retransmits": 2.0}, {"retransmits": 10.0},
            rules=[("retransmits", Threshold(max_ratio=2.0))],
        )
        assert not report.ok
        assert "above ceiling" in report.failures[0].reason

    def test_first_matching_rule_wins(self):
        report = diff_metrics(
            {"case.a.speedup": 4.0}, {"case.a.speedup": 3.0},
            rules=[
                ("case.*.speedup", Threshold(min_ratio=0.5)),
                ("case.a.*", Threshold(min_ratio=0.99)),
            ],
        )
        assert report.ok  # the loose rule matched first

    def test_added_and_removed_never_fail(self):
        report = diff_metrics(
            {"gone": 1.0}, {"new": 2.0},
            default=Threshold(min_ratio=1.0, max_ratio=1.0),
        )
        assert report.ok
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses == {"gone": "removed", "new": "added"}

    def test_zero_baseline_ratios(self):
        report = diff_metrics({"a": 0.0, "b": 0.0}, {"a": 0.0, "b": 5.0})
        ratios = {d.name: d.ratio for d in report.deltas}
        assert ratios["a"] == 1.0
        assert ratios["b"] == float("inf")

    def test_worst_is_farthest_from_one_on_log_scale(self):
        report = diff_metrics(
            {"halved": 4.0, "tanked": 10.0},
            {"halved": 2.0, "tanked": 1.0},
            default=Threshold(min_ratio=0.9),
        )
        assert report.worst.name == "tanked"

    def test_format_names_worst_and_verdict(self):
        report = diff_metrics(
            {"speedup": 4.0}, {"speedup": 1.0},
            rules=[("speedup", Threshold(min_ratio=0.5))],
        )
        text = format_diff(report)
        assert "FAIL speedup: 4 -> 1" in text
        assert "worst regression: speedup (4 -> 1, ratio 0.250)" in text
        assert "FAIL: 1 of 1 compared metrics regressed" in text
        assert format_diff(diff_metrics({"a": 1.0}, {"a": 1.0})).endswith(
            "OK: 0 of 1 compared metrics regressed\n"
        )

    def test_parse_threshold_rule(self):
        pattern, threshold = parse_threshold_rule(
            "case.*.speedup:min=0.5,max=4"
        )
        assert pattern == "case.*.speedup"
        assert threshold == Threshold(min_ratio=0.5, max_ratio=4.0)
        for bad in ("no-bounds", "p:min", "p:floor=1"):
            with pytest.raises(ValueError):
                parse_threshold_rule(bad)


class TestQuery:
    """filter_events composes conjunctive filters over a log."""

    EVENTS = [
        event(0, "engine", "send", rank=0, time=1.0),
        event(1, "engine", "recv", rank=1, time=2.0),
        event(2, "protocol", "recovery", rank=None, time=5.0, depth=1),
        event(3, "span", "recovery.attempt", rank=1, time=4.0, dur=2.0),
        event(4, "engine", "send", rank=0, time=4.5),
        event(5, "engine", "send", rank=0, time=9.0),
    ]

    def test_rank_filter_handles_rankless(self):
        assert [e.seq for e in filter_events(self.EVENTS, ranks=[0])] == (
            [0, 4, 5]
        )
        assert [
            e.seq for e in filter_events(self.EVENTS, ranks=[None])
        ] == [2]

    def test_category_and_kind_filters(self):
        assert [
            e.seq for e in filter_events(self.EVENTS, categories=["span"])
        ] == [3]
        assert [
            e.seq for e in filter_events(self.EVENTS, kinds=["send"])
        ] == [0, 4, 5]

    def test_time_window_is_inclusive(self):
        kept = filter_events(self.EVENTS, since=2.0, until=4.5)
        assert [e.seq for e in kept] == [1, 3, 4]

    def test_span_filter_keeps_interval_and_span_events(self):
        kept = filter_events(self.EVENTS, span="recovery.attempt")
        # Interval [4.0, 6.0]: the recovery at 5.0, the send at 4.5,
        # and the span event itself.
        assert [e.seq for e in kept] == [2, 3, 4]

    def test_filters_compose_conjunctively(self):
        kept = filter_events(
            self.EVENTS, ranks=[0], kinds=["send"], until=5.0
        )
        assert [e.seq for e in kept] == [0, 4]

    def test_span_intervals(self):
        assert span_intervals(self.EVENTS, "recovery.attempt") == [
            (4.0, 6.0)
        ]
        assert span_intervals(self.EVENTS, "missing") == []

    def test_format_events(self):
        text = format_events(self.EVENTS[2:4])
        lines = text.splitlines()
        assert "protocol.recovery" in lines[0]
        assert "depth=1" in lines[0]
        assert "r-" in lines[0]  # rankless marker
        assert "span.recovery.attempt" in lines[1]
        assert format_events([]) == "no events matched\n"


class TestProgressReporter:
    """Structured events render as plain, ETA-decorated lines."""

    def _reporter(self, clocks):
        stream = io.StringIO()
        iterator = iter(clocks)
        return ProgressReporter(
            stream=stream, wall_clock=lambda: next(iterator)
        ), stream

    def test_full_campaign_rendering(self):
        # Clock reads: construction, the start event's elapsed, the
        # start event's epoch reset, then one per later event.
        reporter, stream = self._reporter([0.0, 0.0, 0.0, 10.0, 30.0, 40.0])
        reporter(ProgressEvent("start", 0, 4, fields={"jobs": 2}))
        reporter(ProgressEvent("cell-done", 1, 4, cell="a/p",
                               fields={"ok": True}))
        reporter(ProgressEvent("cell-done", 2, 4, cell="b/p",
                               fields={"ok": False}))
        reporter(ProgressEvent("end", 4, 4, fields={"failed": 1}))
        lines = stream.getvalue().splitlines()
        assert lines[0] == "campaign: 4 cells, 2 job(s)"
        assert lines[1] == "[1/4] ok   a/p (10.0s eta 30s)"
        assert lines[2] == "[2/4] FAIL b/p (30.0s eta 30s)"
        assert lines[3] == "campaign done: 4/4 cells, 1 failed, " \
            "0 quarantined (40.0s)"

    def test_retry_and_quarantine_lines(self):
        reporter, stream = self._reporter([0.0, 1.0, 2.0])
        reporter(ProgressEvent("retry", 0, 3, cell="c/p",
                               fields={"attempt": 2}))
        reporter(ProgressEvent("quarantine", 1, 3, cell="c/p"))
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[0/3] retry c/p (attempt 2)"
        assert lines[1] == "[1/3] QUARANTINED c/p"


class TestSchemaVersion:
    """The JSONL header gates forward compatibility."""

    EVENTS = [event(0, "engine", "send", rank=0, time=1.0)]

    def test_header_is_first_line(self):
        lines = events_to_jsonl(self.EVENTS).splitlines()
        header = json.loads(lines[0])
        assert header == {
            "format": "repro-obs-jsonl",
            "log_schema_version": EVENT_LOG_SCHEMA_VERSION,
        }
        assert lines[0] == event_log_header()
        assert len(lines) == 2

    def test_round_trip_through_header(self):
        replayed = read_event_log(events_to_jsonl(self.EVENTS))
        assert replayed == self.EVENTS

    def test_headerless_log_is_legacy_v1(self):
        legacy = json.dumps(self.EVENTS[0].to_dict())
        assert read_event_log(legacy) == self.EVENTS

    def test_unknown_version_rejected_with_structure(self, tmp_path):
        lines = events_to_jsonl(self.EVENTS).splitlines()
        header = json.loads(lines[0])
        header["log_schema_version"] = 99
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(header) + "\n" + lines[1] + "\n")
        with pytest.raises(SchemaVersionError) as excinfo:
            read_event_log(path)
        assert excinfo.value.found == 99
        assert EVENT_LOG_SCHEMA_VERSION in excinfo.value.supported
