"""Chaos-harness failure artifacts: the automatic diagnostic bundle.

A failing schedule must leave behind everything needed to diagnose it
offline: a vector-clock-stamped flight-recorder dump (convertible to a
Chrome trace), the schedule verbatim (replayable via the CLI's
``--fault-plan``), a ddmin-shrunk counterexample, and the verdict.
"""

import json

import pytest

from repro.obs import chrome_trace, read_event_log
from repro.runtime.chaos import (
    ChaosConfig,
    chaos_sweep,
    draw_schedule,
    dump_failure_artifacts,
    run_schedule,
)
from repro.runtime.transport import TransportConfig

BROKEN = TransportConfig(dedup=False)


def _failing_seed(config: ChaosConfig) -> int:
    for seed in range(30):
        plan = draw_schedule(seed, config)
        if not run_schedule(plan, config=config,
                            transport_config=BROKEN).ok:
            return seed
    pytest.skip("no failing seed found with the broken transport")


class TestDumpFailureArtifacts:
    """The bundle a single failing schedule produces."""

    def test_bundle_contents(self, tmp_path):
        config = ChaosConfig()
        seed = _failing_seed(config)
        plan = draw_schedule(seed, config)
        paths = dump_failure_artifacts(
            plan, protocol="appl-driven", config=config,
            out_dir=tmp_path, transport_config=BROKEN, prefix="case",
            max_shrink_runs=40,
        )
        assert set(paths) == {
            "flight_recorder", "schedule", "outcome", "shrunk",
        }
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0
        assert "FAIL" in paths["outcome"].read_text()

    def test_flight_dump_is_stamped_and_chrome_convertible(self, tmp_path):
        config = ChaosConfig()
        seed = _failing_seed(config)
        plan = draw_schedule(seed, config)
        paths = dump_failure_artifacts(
            plan, protocol="appl-driven", config=config,
            out_dir=tmp_path, transport_config=BROKEN,
            shrink=False,
        )
        events = read_event_log(paths["flight_recorder"])
        assert events
        ranked = [e for e in events if e.rank is not None]
        assert ranked and all(e.clock is not None for e in ranked)
        doc = chrome_trace(events)
        assert json.loads(json.dumps(doc)) == doc
        assert any(e["ph"] == "i" for e in doc["traceEvents"])

    def test_schedule_json_replays_to_the_same_verdict(self, tmp_path):
        from repro.cli import _load_fault_plan

        config = ChaosConfig()
        seed = _failing_seed(config)
        plan = draw_schedule(seed, config)
        paths = dump_failure_artifacts(
            plan, protocol="appl-driven", config=config,
            out_dir=tmp_path, transport_config=BROKEN, shrink=False,
        )
        data = json.loads(paths["schedule"].read_text())
        assert data == plan.to_json_dict()
        # The dumped schedule replays through the CLI's --fault-plan
        # loader to the same failing verdict.
        rebuilt = _load_fault_plan(str(paths["schedule"]), [], [])
        assert not run_schedule(
            rebuilt, config=config, transport_config=BROKEN
        ).ok

    def test_shrunk_plan_still_fails_and_is_no_bigger(self, tmp_path):
        config = ChaosConfig()
        seed = _failing_seed(config)
        plan = draw_schedule(seed, config)
        paths = dump_failure_artifacts(
            plan, protocol="appl-driven", config=config,
            out_dir=tmp_path, transport_config=BROKEN,
            max_shrink_runs=40,
        )
        shrunk = json.loads(paths["shrunk"].read_text())
        original = plan.to_json_dict()
        assert (
            len(shrunk.get("network_faults", []))
            + len(shrunk.get("crashes", []))
            <= len(original.get("network_faults", []))
            + len(original.get("crashes", []))
        )


class TestChaosSweepAutoDump:
    """chaos_sweep dumps artifacts for failing cells automatically."""

    def test_failing_sweep_writes_artifacts(self, tmp_path):
        config = ChaosConfig()
        seed = _failing_seed(config)
        outcomes = chaos_sweep(
            range(seed, seed + 1),
            protocols=("appl-driven",),
            config=config,
            transport_config=BROKEN,
            artifacts_dir=tmp_path,
        )
        assert not outcomes[("appl-driven", seed)].ok
        dumped = sorted(p.name for p in tmp_path.iterdir())
        assert f"appl-driven-seed{seed}.flight.jsonl" in dumped
        assert f"appl-driven-seed{seed}.schedule.json" in dumped

    def test_passing_sweep_writes_nothing(self, tmp_path):
        outcomes = chaos_sweep(
            range(1),
            protocols=("appl-driven",),
            artifacts_dir=tmp_path,
        )
        assert all(o.ok for o in outcomes.values())
        assert not list(tmp_path.iterdir())
