"""Unit tests of the event bus, metrics registry, and flight recorder."""

import pytest

from repro.causality.vector_clock import VectorClock
from repro.obs import (
    CATEGORIES,
    Counter,
    EventBus,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    ObsEvent,
)


class TestEventBus:
    """Publishing, sequencing, and vector-clock auto-stamping."""

    def test_emit_delivers_to_all_subscribers(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        event = bus.emit("engine", "send", 0, 1.5, dst=1)
        assert seen_a == [event]
        assert seen_b == [event]
        assert event.fields == {"dst": 1}

    def test_seq_is_global_and_monotonic(self):
        bus = EventBus()
        events = [bus.emit("engine", "send", r, 0.0) for r in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert bus.events_emitted == 5

    def test_bound_clocks_stamp_ranked_events(self):
        bus = EventBus()
        clocks = [VectorClock.zero(2), VectorClock.zero(2)]
        bus.bind_clocks(clocks)
        clocks[1] = clocks[1].tick(1)
        event = bus.emit("transport", "frame", 1, 0.5)
        assert event.clock == clocks[1].components

    def test_bound_clocks_track_in_place_mutation(self):
        # The engine replaces clock entries by index assignment on
        # rollback; the bus must see the *live* list, not a copy.
        bus = EventBus()
        clocks = [VectorClock.zero(1)]
        bus.bind_clocks(clocks)
        first = bus.emit("engine", "send", 0, 0.0)
        clocks[0] = clocks[0].tick(0).tick(0)
        second = bus.emit("engine", "send", 0, 1.0)
        assert first.clock == (0,)
        assert second.clock == (2,)

    def test_unranked_event_has_no_clock(self):
        bus = EventBus()
        bus.bind_clocks([VectorClock.zero(1)])
        event = bus.emit("protocol", "recovery", None, 3.0)
        assert event.clock is None

    def test_explicit_clock_wins_over_binding(self):
        bus = EventBus()
        bus.bind_clocks([VectorClock.zero(2)])
        event = bus.emit("engine", "send", 0, 0.0, clock=(7, 7))
        assert event.clock == (7, 7)


class TestObsEvent:
    """Serialisation round-trip."""

    def test_round_trip(self):
        event = ObsEvent(
            seq=3, category="storage", name="commit", rank=1,
            time=2.5, clock=(1, 2), fields={"number": 4},
        )
        assert ObsEvent.from_dict(event.to_dict()) == event

    def test_category_taxonomy_is_fixed(self):
        assert CATEGORIES == (
            "engine", "transport", "storage", "protocol", "span"
        )


class TestMetrics:
    """Counters, gauges, histograms, and the registry."""

    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_histogram_streams_moments(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == 3.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0

    def test_registry_is_lazy_and_kind_safe(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")
        data = registry.as_dict()
        assert data["a"]["type"] == "counter"

    def test_collector_derives_metrics_from_events(self):
        registry = MetricsRegistry()
        collector = MetricsCollector(registry)
        bus = EventBus()
        collector.attach(bus)
        bus.emit("engine", "checkpoint", 0, 1.0, checkpoint_number=1)
        bus.emit("engine", "checkpoint", 0, 4.0, checkpoint_number=2)
        bus.emit("engine", "checkpoint", 1, 4.0, checkpoint_number=1)
        bus.emit("transport", "frame", 0, 1.0, seq=0, attempt=1)
        bus.emit("transport", "frame", 0, 2.0, seq=0, attempt=2)
        bus.emit("protocol", "recovery", None, 9.0, depth=2)
        data = registry.as_dict()
        assert data["events_total"]["value"] == 6
        assert data["checkpoint_latency"]["count"] == 1
        assert data["checkpoint_latency"]["mean"] == 3.0
        assert data["recovery_line_lag"]["value"] == 1
        assert data["retransmits_total"]["value"] == 1
        assert data["retransmit_rate"]["value"] == 0.5
        assert data["rollback_depth"]["max"] == 2.0


class TestFlightRecorder:
    """Bounded retention and dumping."""

    def test_keeps_only_the_newest_events(self):
        recorder = FlightRecorder(capacity=3)
        bus = EventBus()
        recorder.attach(bus)
        for index in range(10):
            bus.emit("engine", "send", 0, float(index))
        assert len(recorder) == 3
        assert [e.time for e in recorder.events()] == [7.0, 8.0, 9.0]
        assert recorder.dropped == 7

    def test_dump_writes_jsonl(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        bus = EventBus()
        recorder.attach(bus)
        bus.emit("engine", "send", 0, 0.0)
        path = recorder.dump(tmp_path / "flight.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # schema-version header + one event
        assert '"log_schema_version"' in lines[0]
        assert '"cat":"engine"' in lines[1]
