"""Span tracker and campaign rollup tests.

Covers the two clocks' strict separation (wall on the tracker, sim on
the bus), span nesting, the zero-cost null tracker, the pipeline and
recovery-supervisor instrumentation, and the rollup merge algebra
(associative, commutative for counters/histograms, deterministic).
"""

import json
from types import SimpleNamespace

import pytest

from repro.lang.programs import ring_pipeline, stencil_1d
from repro.obs import NULL_TRACKER, Observability, SpanTracker
from repro.obs.bus import EventBus
from repro.obs.rollup import (
    ROLLUP_SCHEMA_VERSION,
    aggregate_section_bytes,
    campaign_rollup,
    cell_metrics,
    chaos_rollup,
    merge_metric,
    merge_registries,
    rollup_to_json,
)
from repro.phases.pipeline import transform
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import Simulation
from repro.runtime.failures import (
    FaultKind,
    FaultPlan,
    NetworkFaultEvent,
    NetworkFaultKind,
    RecoveryFaultEvent,
    RecoveryFaultKind,
    StorageFaultEvent,
)


# Statement IDs come from a global counter, so byte-identity tests
# must reuse one parsed program rather than re-parsing per run.
PROGRAM = ring_pipeline()


def fake_clock(values):
    """A wall clock yielding the given readings in order."""
    iterator = iter(values)
    return lambda: next(iterator)


class TestSpanTracker:
    """Nesting, dual clocks, record(), and the Chrome export."""

    def test_nesting_assigns_parents(self):
        tracker = SpanTracker()
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
            with tracker.span("sibling"):
                pass
        outer, inner, sibling = tracker.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert [s.span_id for s in tracker.spans] == [0, 1, 2]

    def test_wall_duration_from_injected_clock(self):
        tracker = SpanTracker(wall_clock=fake_clock([10.0, 13.5]))
        with tracker.span("work"):
            pass
        (span,) = tracker.spans
        assert span.wall_duration == pytest.approx(3.5)
        assert span.sim_duration is None  # offline work has no sim clock
        assert tracker.wall_totals() == {"work": pytest.approx(3.5)}

    def test_close_pops_unclosed_children(self):
        tracker = SpanTracker(wall_clock=fake_clock([0.0, 1.0, 2.0, 3.0]))
        outer = tracker.open("outer")
        tracker.open("leaked-child")
        tracker.close(outer)
        assert all(s.wall_end is not None for s in tracker.spans)

    def test_bus_event_carries_sim_times_only(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        tracker = SpanTracker(bus=bus, wall_clock=fake_clock([100.0, 200.0]))
        with tracker.span("recovery.attempt", rank=1,
                          sim_start=14.0, sim_end=14.5, outcome="ok"):
            pass
        (event,) = seen
        assert event.category == "span"
        assert event.time == 14.0
        assert event.fields["dur"] == pytest.approx(0.5)
        assert event.fields["outcome"] == "ok"
        # The huge wall readings must be nowhere in the published event.
        assert 100.0 not in event.fields.values()
        assert event.time != 100.0

    def test_wall_only_span_publishes_zero_sim_times(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        tracker = SpanTracker(bus=bus, wall_clock=fake_clock([5.0, 6.0]))
        with tracker.span("phase3.placement"):
            pass
        (event,) = seen
        assert event.time == 0.0
        assert event.fields["dur"] == 0.0

    def test_record_parents_and_publishes(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        tracker = SpanTracker(bus=bus, wall_clock=fake_clock([0.0, 9.0]))
        with tracker.span("campaign"):
            span = tracker.record("cell", 1.0, 4.0, cell="a/b", ok=True)
        assert span.wall_duration == pytest.approx(3.0)
        assert span.parent_id == tracker.spans[0].span_id
        assert seen[0].fields["cell"] == "a/b"
        # record() never touches the stack: the outer span closed clean.
        assert tracker.spans[0].wall_end == 9.0

    def test_live_span_fields_written_inside_block(self):
        tracker = SpanTracker()
        with tracker.span("cache.lookup") as span:
            span.fields["outcome"] = "miss"
        assert tracker.spans[0].fields["outcome"] == "miss"

    def test_null_tracker_records_nothing(self):
        with NULL_TRACKER.span("anything") as span:
            span.fields["outcome"] = "hit"  # must not leak anywhere
        recorded = NULL_TRACKER.record("cell", 0.0, 1.0)
        assert recorded.span_id == -1
        assert not hasattr(NULL_TRACKER, "spans")

    def test_chrome_trace_shape(self):
        tracker = SpanTracker(
            wall_clock=fake_clock([1.0, 2.0, 3.0, 4.0])
        )
        with tracker.span("outer"):
            with tracker.span("inner", rank=2, sim_start=0.0, sim_end=5.0):
                pass
        doc = tracker.chrome_trace()
        assert json.loads(json.dumps(doc)) == doc
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["outer", "inner"]
        outer, inner = complete
        assert outer["ts"] == 0.0  # zeroed at the first span's start
        assert outer["tid"] == -1  # rankless -> driver thread
        assert inner["tid"] == 2
        assert inner["args"]["parent"] == 0
        assert inner["args"]["sim_dur"] == 5.0
        threads = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert threads == {"driver", "P2"}


class TestPipelineSpans:
    """The offline pipeline's four phases run inside spans."""

    def test_all_four_phases_recorded(self):
        tracker = SpanTracker()
        transform(stencil_1d(), force_insertion=True, tracker=tracker)
        assert [s.name for s in tracker.spans] == [
            "phase1.insertion", "phase3.placement",
            "phase2.matching", "phase4.verification",
        ]
        assert all(s.wall_end is not None for s in tracker.spans)

    def test_insertion_span_skipped_when_program_has_checkpoints(self):
        tracker = SpanTracker()
        transform(ring_pipeline(), tracker=tracker)
        names = [s.name for s in tracker.spans]
        assert "phase1.insertion" not in names
        assert "phase4.verification" in names

    def test_cache_lookup_span_outcomes(self, tmp_path):
        from repro.campaign.cache import TransformCache

        cache = TransformCache(tmp_path / "cache")
        program = stencil_1d()
        miss_tracker = SpanTracker()
        transform(program, cache=cache, tracker=miss_tracker)
        hit_tracker = SpanTracker()
        transform(program, cache=cache, tracker=hit_tracker)
        (miss,) = miss_tracker.by_name("cache.lookup")
        (hit,) = hit_tracker.by_name("cache.lookup")
        assert miss.fields["outcome"] == "miss"
        assert hit.fields["outcome"] == "hit"
        # A hit returns without running any phase.
        assert [s.name for s in hit_tracker.spans] == ["cache.lookup"]

    def test_tracker_does_not_change_the_output(self):
        from repro.lang.printer import to_source

        program = stencil_1d()
        plain = transform(program, force_insertion=True)
        tracked = transform(
            program, force_insertion=True, tracker=SpanTracker()
        )
        assert to_source(plain.program) == to_source(tracked.program)


class TestRecoverySpans:
    """RecoverySupervisor publishes one sim-clock span per attempt."""

    def _run(self, plan):
        obs = Observability()
        result = Simulation(
            PROGRAM, 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=plan, seed=0, observer=obs.bus,
        ).run()
        return obs, result

    def test_clean_recovery_emits_one_ok_span(self):
        obs, _ = self._run(FaultPlan(crashes=[(19.5, 1)]))
        spans = [e for e in obs.events if e.category == "span"]
        assert [e.fields["outcome"] for e in spans] == ["ok"]
        assert spans[0].name == "recovery.attempt"
        assert spans[0].time == 19.5

    def test_faulted_recovery_emits_retry_spans_with_backoff(self):
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            recovery_faults=[RecoveryFaultEvent(
                0, 1, RecoveryFaultKind.CRASH, attempts=2
            )],
        )
        obs, _ = self._run(plan)
        spans = [e for e in obs.events if e.category == "span"]
        assert [e.fields["outcome"] for e in spans] == [
            "retry", "retry", "ok"
        ]
        assert [e.fields["attempt"] for e in spans] == [1, 2, 3]
        # Retry spans cover the backoff window on the *simulated* clock.
        assert spans[0].fields["dur"] > 0.0
        durations = obs.metrics.as_dict()["span.recovery.attempt.sim_dur"]
        assert durations["count"] == 3

    def test_span_events_are_deterministic(self):
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            recovery_faults=[RecoveryFaultEvent(
                0, 1, RecoveryFaultKind.CRASH, attempts=1
            )],
        )
        obs_a, _ = self._run(plan)
        obs_b, _ = self._run(plan)
        assert obs_a.jsonl() == obs_b.jsonl()


class TestCollectorUnderFaults:
    """Derived metrics move the right way under injected faults."""

    def _run(self, plan, steps=8):
        obs = Observability()
        Simulation(
            PROGRAM, 3, params={"steps": steps},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=plan, seed=0, observer=obs.bus,
        ).run()
        return obs.metrics.as_dict()

    def test_retransmit_rate_rises_during_partition(self):
        clean = self._run(FaultPlan())
        partitioned = self._run(FaultPlan(network_faults=[
            NetworkFaultEvent(8.0, NetworkFaultKind.PARTITION, 0, 1),
            NetworkFaultEvent(11.0, NetworkFaultKind.HEAL, 0, 1),
        ]))
        assert clean["retransmits_total"]["value"] == 0
        assert clean["retransmit_rate"]["value"] == 0.0
        assert partitioned["retransmits_total"]["value"] >= 1
        assert 0.0 < partitioned["retransmit_rate"]["value"] < 1.0

    def test_rollback_depth_grows_under_escalating_fallback(self):
        # Bit-rot the latest checkpoint just before the crash: the
        # newest recovery line fails validation and recovery falls
        # back one line deeper.
        corrupted = self._run(FaultPlan(
            crashes=[(19.5, 1)],
            storage_faults=[
                StorageFaultEvent(19.0, 2, FaultKind.BIT_ROT)
            ],
        ), steps=10)
        clean = self._run(FaultPlan(crashes=[(19.5, 1)]), steps=10)
        assert clean["rollback_depth"]["max"] == 0.0
        assert corrupted["rollback_depth"]["max"] >= 1.0


class TestMergeAlgebra:
    """merge_metric/merge_registries: the rollup's determinism core."""

    def _hist(self, *values):
        metric = {
            "type": "histogram", "count": len(values), "sum": sum(values),
            "min": min(values) if values else None,
            "max": max(values) if values else None,
            "mean": sum(values) / len(values) if values else 0.0,
        }
        return metric

    def test_counter_merge_adds(self):
        merged = merge_metric(None, {"type": "counter", "value": 2})
        merged = merge_metric(merged, {"type": "counter", "value": 3})
        assert merged == {"type": "counter", "value": 5}

    def test_gauge_merge_keeps_last_min_max(self):
        merged = merge_metric(None, {"type": "gauge", "value": 2.0})
        merged = merge_metric(merged, {"type": "gauge", "value": 5.0})
        merged = merge_metric(merged, {"type": "gauge", "value": 3.0})
        assert merged == {
            "type": "gauge", "value": 3.0, "min": 2.0, "max": 5.0,
        }

    def test_histogram_merge_is_associative(self):
        a, b, c = (
            self._hist(1.0, 3.0), self._hist(5.0), self._hist(2.0, 8.0)
        )
        left = merge_metric(
            merge_metric(merge_metric(None, a), b), c
        )
        ab = merge_metric(merge_metric(None, a), b)
        right = merge_metric(merge_metric(None, ab), c)
        assert left == right
        assert left == self._hist(1.0, 3.0, 5.0, 2.0, 8.0)

    def test_histogram_merge_is_commutative(self):
        a, b = self._hist(1.0, 7.0), self._hist(4.0)
        ab = merge_metric(merge_metric(None, a), dict(b))
        ba = merge_metric(merge_metric(None, b), dict(a))
        assert ab == ba

    def test_empty_histogram_merges_cleanly(self):
        merged = merge_metric(None, self._hist())
        merged = merge_metric(merged, self._hist(2.0))
        assert merged["count"] == 1
        assert merged["min"] == 2.0

    def test_type_mismatch_raises(self):
        counter = merge_metric(None, {"type": "counter", "value": 1})
        with pytest.raises(ValueError, match="cannot merge"):
            merge_metric(counter, {"type": "gauge", "value": 1.0})
        with pytest.raises(ValueError, match="unknown metric type"):
            merge_metric(None, {"type": "summary"})

    def test_merge_registries_order_and_keys(self):
        registries = [
            {"b": {"type": "counter", "value": 1},
             "a": {"type": "gauge", "value": 1.0}},
            {"a": {"type": "gauge", "value": 2.0}},
        ]
        merged = merge_registries(registries)
        assert list(merged) == ["a", "b"]  # sorted output keys
        assert merged["a"]["value"] == 2.0  # last in merge order


class TestRollups:
    """campaign_rollup / chaos_rollup document shape and invariance."""

    def _outcome(self, stats=None, error=None, events_jsonl=""):
        return SimpleNamespace(
            stats=stats or {}, error=error, events_jsonl=events_jsonl,
        )

    def _result(self, cells, jobs=1):
        return SimpleNamespace(
            cells=cells, jobs=jobs, timings={k: 0.1 for k in cells},
            workers={}, executor=None,
        )

    def test_cell_metrics_fold_stats_and_errors(self):
        metrics = cell_metrics(self._outcome(
            stats={"checkpoints": 4, "completed": True, "lost_work": 1.5},
            error="boom",
        ))
        assert metrics["stats.checkpoints"] == {
            "type": "counter", "value": 4,
        }
        assert metrics["stats.completed"]["value"] == 1
        assert metrics["stats.lost_work"] == {
            "type": "gauge", "value": 1.5,
        }
        assert metrics["cells_errored"]["value"] == 1

    def test_cell_metrics_replay_event_log(self):
        obs = Observability()
        Simulation(
            PROGRAM, 3, params={"steps": 6},
            protocol=ApplicationDrivenProtocol(), seed=0,
            observer=obs.bus,
        ).run()
        metrics = cell_metrics(self._outcome(events_jsonl=obs.jsonl()))
        assert metrics["events_total"]["value"] == len(obs.events)
        assert "checkpoint_latency" in metrics

    def test_rollup_shape_and_tags(self):
        result = self._result({
            "stencil/appl-driven": self._outcome(stats={"checkpoints": 2}),
            "ring/cl": self._outcome(stats={"checkpoints": 3}),
        }, jobs=4)
        rollup = campaign_rollup(result)
        assert rollup["rollup_schema_version"] == ROLLUP_SCHEMA_VERSION
        assert rollup["aggregate"]["stats.checkpoints"]["value"] == 5
        tags = rollup["per_cell"]["stencil/appl-driven"]["tags"]
        assert tags == {
            "cell": "stencil/appl-driven", "protocol": "appl-driven",
        }
        assert rollup["diagnostics"]["jobs"] == 4

    def test_aggregate_bytes_ignore_diagnostics(self):
        cells = {
            "a/p": self._outcome(stats={"checkpoints": 1}),
            "b/p": self._outcome(stats={"checkpoints": 2}),
        }
        serial = campaign_rollup(self._result(cells, jobs=1))
        parallel = campaign_rollup(self._result(cells, jobs=8))
        assert aggregate_section_bytes(serial) == (
            aggregate_section_bytes(parallel)
        )
        assert rollup_to_json(serial) != rollup_to_json(parallel)

    def test_chaos_rollup_counts_verdicts(self):
        outcomes = {
            ("appl-driven", 0): SimpleNamespace(
                ok=True, unrecoverable=False, faults=3, crashes=1,
            ),
            ("appl-driven", 1): SimpleNamespace(
                ok=False, unrecoverable=True, faults=5, crashes=2,
            ),
        }
        rollup = chaos_rollup(outcomes, jobs=2)
        aggregate = rollup["aggregate"]
        assert aggregate["chaos.cells"]["value"] == 2
        assert aggregate["chaos.failures"]["value"] == 1
        assert aggregate["chaos.unrecoverable"]["value"] == 1
        assert aggregate["chaos.faults"]["value"] == 8
        assert aggregate["chaos.crashes"]["value"] == 3
        assert "appl-driven/seed1" in rollup["per_cell"]
