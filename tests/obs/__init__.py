"""Tests of the observability subsystem (:mod:`repro.obs`)."""
