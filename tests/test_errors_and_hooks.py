"""Error-hierarchy and default-hook behaviour tests."""

import pytest

from repro import errors
from repro.runtime.hooks import NullProtocol, ProtocolHooks


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_language_errors_carry_positions(self):
        error = errors.ParseError("boom", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_deadlock_carries_blocked_ranks(self):
        error = errors.DeadlockError("stuck", blocked=(1, 2))
        assert error.blocked == (1, 2)

    def test_phase_errors_group(self):
        for cls in (
            errors.InsertionError,
            errors.MatchingError,
            errors.PlacementError,
            errors.VerificationError,
        ):
            assert issubclass(cls, errors.PhaseError)

    def test_simulation_errors_group(self):
        for cls in (
            errors.DeadlockError,
            errors.ChannelError,
            errors.StorageError,
            errors.RecoveryError,
        ):
            assert issubclass(cls, errors.SimulationError)


class TestDefaultHooks:
    def test_null_protocol_is_fully_inert(self):
        from repro.lang.programs import jacobi
        from repro.runtime import Simulation

        bare = Simulation(jacobi(), 4, params={"steps": 3}).run()
        with_null = Simulation(
            jacobi(), 4, params={"steps": 3}, protocol=NullProtocol()
        ).run()
        assert bare.final_env == with_null.final_env
        assert bare.completion_time == with_null.completion_time

    def test_base_hooks_are_noops(self):
        hooks = ProtocolHooks()
        # none of these should raise or require a simulation
        hooks.on_start(None)
        hooks.on_effect(None, 0, None)
        hooks.on_control(None, None)
        hooks.on_timer(None, 0, "t", 0.0)
        hooks.on_checkpoint(None, 0, 1)
        assert hooks.piggyback(None, 0) == {}

    def test_default_failure_hook_leaves_crash_unhandled(self):
        from repro.lang.parser import parse
        from repro.runtime import FailurePlan, Simulation

        with pytest.raises(errors.RecoveryError, match="no recovery"):
            Simulation(
                parse("program t():\n    compute(100)\n"),
                1,
                protocol=NullProtocol(),
                failure_plan=FailurePlan.single(5.0, 0),
            ).run()
