"""In-band clock tracking must reproduce the engine's omniscient clocks."""

import pytest

from repro.causality.records import EventKind
from repro.lang.programs import (
    default_params,
    jacobi,
    master_worker,
    token_ring,
    tree_reduce,
)
from repro.protocols.clock_tracking import ClockTrackingProtocol
from repro.runtime import Simulation


def run_tracked(make, n, steps=4):
    protocol = ClockTrackingProtocol()
    result = Simulation(
        make(), n, params=default_params(make().name, steps=steps),
        protocol=protocol,
    ).run()
    return protocol, result


def engine_checkpoint_clocks(result):
    clocks = {}
    for event in result.trace.of_kind(EventKind.CHECKPOINT):
        clocks[(event.process, event.checkpoint_number)] = event.clock
    return clocks


@pytest.mark.parametrize(
    "make,n",
    [(jacobi, 4), (master_worker, 4), (token_ring, 5), (tree_reduce, 4)],
)
class TestTrackedClocksMatchEngine:
    def test_checkpoint_clocks_identical(self, make, n):
        """The headline property: in-band tracking == omniscient."""
        protocol, result = run_tracked(make, n)
        engine = engine_checkpoint_clocks(result)
        assert engine, "workload produced no checkpoints"
        assert set(protocol.checkpoint_clocks) == set(engine)
        for key, tracked in protocol.checkpoint_clocks.items():
            assert tracked.components == engine[key].components, key

    def test_coordination_stats_unchanged(self, make, n):
        _, result = run_tracked(make, n)
        assert result.stats.control_messages == 0
        assert result.stats.forced_checkpoints == 0


class TestTrackedConsistencyAnalysis:
    def test_tracked_clocks_reproduce_consistency_verdicts(self):
        """Cut consistency computed from tracked clocks equals the
        verdict from engine clocks for every straight cut."""
        from repro.lang.programs import jacobi_odd_even

        for make, expect_consistent in ((jacobi, True), (jacobi_odd_even, False)):
            protocol, result = run_tracked(make, 4)
            engine = engine_checkpoint_clocks(result)
            max_index = result.trace.max_straight_cut_index()
            verdicts = []
            for index in range(1, max_index + 1):
                members = [
                    protocol.checkpoint_clocks[(rank, index)]
                    for rank in range(4)
                ]
                consistent = not any(
                    a.happened_before(b)
                    for a in members
                    for b in members
                    if a is not b
                )
                verdicts.append(consistent)
            assert all(verdicts) == expect_consistent, make
