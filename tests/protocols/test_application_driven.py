"""Application-driven protocol tests — the coordination-free claims."""

import pytest

from repro.errors import RecoveryError
from repro.lang.programs import default_params, jacobi, jacobi_odd_even, ring_pipeline
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime import FailurePlan, Simulation


class TestCoordinationFreedom:
    """The paper's headline claims, checked on real runs (V4)."""

    def test_zero_control_messages(self, any_program):
        result = Simulation(
            any_program, 4,
            params=default_params(any_program.name),
            protocol=ApplicationDrivenProtocol(),
        ).run()
        assert result.stats.control_messages == 0

    def test_zero_forced_checkpoints(self, any_program):
        result = Simulation(
            any_program, 4,
            params=default_params(any_program.name),
            protocol=ApplicationDrivenProtocol(),
        ).run()
        assert result.stats.forced_checkpoints == 0

    def test_no_overhead_vs_bare_run(self):
        bare = Simulation(jacobi(), 4, params={"steps": 5}).run()
        with_protocol = Simulation(
            jacobi(), 4, params={"steps": 5},
            protocol=ApplicationDrivenProtocol(),
        ).run()
        assert with_protocol.completion_time == bare.completion_time


class TestRecovery:
    def test_recovers_to_deepest_common_cut(self):
        protocol = ApplicationDrivenProtocol()
        result = Simulation(
            jacobi(), 4, params={"steps": 10}, protocol=protocol,
            failure_plan=FailurePlan.single(12.0, 3),
        ).run()
        assert result.stats.completed
        assert protocol.recovered_to
        assert protocol.recovered_to[0] >= 1

    def test_early_crash_restarts_from_initial(self):
        protocol = ApplicationDrivenProtocol()
        result = Simulation(
            jacobi(), 4, params={"steps": 5}, protocol=protocol,
            failure_plan=FailurePlan.single(0.001, 0),
        ).run()
        assert result.stats.completed
        assert protocol.recovered_to[0] == 0

    def test_validation_rejects_untransformed_program(self):
        protocol = ApplicationDrivenProtocol(validate=True)
        with pytest.raises(RecoveryError, match="not a recovery line"):
            Simulation(
                jacobi_odd_even(), 4, params={"steps": 10}, protocol=protocol,
                failure_plan=FailurePlan.single(12.0, 1),
            ).run()

    def test_validation_can_be_disabled(self):
        protocol = ApplicationDrivenProtocol(validate=False)
        # without validation the restore proceeds (into a formally
        # inconsistent state); the run itself still finishes.
        result = Simulation(
            jacobi_odd_even(), 4, params={"steps": 10}, protocol=protocol,
            failure_plan=FailurePlan.single(12.0, 1),
        ).run()
        assert result.stats.rollbacks == 1

    def test_repeated_failures_bounded_rollback(self):
        """No rollback propagation: each recovery loses at most one
        checkpoint interval per process."""
        protocol = ApplicationDrivenProtocol()
        plan = FailurePlan(
            crashes=[],
        )
        from repro.runtime.failures import CrashEvent

        plan.crashes.extend(
            CrashEvent(time, rank)
            for time, rank in ((8.2, 0), (16.9, 2), (25.4, 1))
        )
        result = Simulation(
            ring_pipeline(), 5, params={"steps": 10}, protocol=protocol,
            failure_plan=plan,
        ).run()
        assert result.stats.completed
        assert result.stats.rollbacks == 3
        # recovered indexes never regress more than one failure's worth
        assert protocol.recovered_to == sorted(protocol.recovered_to)
