"""Message-logging protocol tests: single-process recovery semantics."""

import pytest

from repro.causality.records import EventKind
from repro.lang.programs import jacobi_plain, master_worker, token_ring
from repro.bench.workloads import strip_checkpoints
from repro.protocols import MessageLoggingProtocol
from repro.runtime import FailurePlan, Simulation
from repro.runtime.failures import CrashEvent


def run(make=jacobi_plain, n=4, steps=20, plan=None, period=8.0):
    protocol = MessageLoggingProtocol(period=period)
    result = Simulation(
        make(), n, params={"steps": steps},
        protocol=protocol, failure_plan=plan,
    ).run()
    return protocol, result


class TestFailureFree:
    def test_no_control_messages(self):
        _, result = run()
        assert result.stats.control_messages == 0

    def test_periodic_checkpoints_taken(self):
        _, result = run()
        assert result.stats.checkpoints > 0


class TestSingleProcessRecovery:
    def test_only_failed_process_restarts(self):
        protocol, result = run(plan=FailurePlan.single(23.7, 1))
        assert result.stats.completed
        assert protocol.single_restarts == [1]
        restarts = result.trace.of_kind(EventKind.RESTART)
        assert [e.process for e in restarts] == [1]

    def test_survivors_never_roll_back(self):
        _, result = run(plan=FailurePlan.single(23.7, 1))
        # exactly one RESTART event, and no survivor checkpoint is
        # truncated: every rank's history stays monotone
        for rank in (0, 2, 3):
            numbers = [c.number for c in result.storage.history(rank)]
            assert numbers == sorted(numbers)

    def test_replay_reaches_same_final_state(self):
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        _, result = run(plan=FailurePlan.single(23.7, 1))
        assert result.final_env == baseline.final_env

    def test_duplicate_sends_suppressed(self):
        """After recovery the total message count seen by receivers is
        identical to the failure-free run (no duplicate deliveries)."""
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        _, result = run(plan=FailurePlan.single(23.7, 1))
        baseline_recvs = len(baseline.trace.of_kind(EventKind.RECV))
        # the recovering process RE-consumes some logged messages, which
        # appear as extra RECV trace events for rank 1 only
        recv_by_rank = {}
        for event in result.trace.of_kind(EventKind.RECV):
            recv_by_rank[event.process] = recv_by_rank.get(event.process, 0) + 1
        for rank in (0, 2, 3):
            assert recv_by_rank[rank] == baseline_recvs // 4

    def test_multiple_failures_different_ranks(self):
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        plan = FailurePlan(
            crashes=[CrashEvent(15.0, 2), CrashEvent(30.0, 0), CrashEvent(42.0, 3)]
        )
        protocol, result = run(plan=plan)
        assert result.stats.completed
        assert protocol.single_restarts == [2, 0, 3]
        assert result.final_env == baseline.final_env

    def test_repeated_failures_same_rank(self):
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        plan = FailurePlan(
            crashes=[CrashEvent(14.0, 1), CrashEvent(33.0, 1)]
        )
        protocol, result = run(plan=plan)
        assert result.stats.completed
        assert protocol.single_restarts == [1, 1]
        assert result.final_env == baseline.final_env

    def test_crash_before_first_checkpoint_replays_from_initial(self):
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 10}).run()
        protocol, result = run(
            steps=10, plan=FailurePlan.single(2.0, 3), period=1000.0
        )
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    @pytest.mark.parametrize("make,n", [(master_worker, 4), (token_ring, 5)])
    def test_other_workloads(self, make, n):
        baseline = Simulation(
            strip_checkpoints(make()), n, params={"steps": 10}
        ).run()
        _, result = run(
            make=lambda: strip_checkpoints(make()), n=n, steps=10,
            plan=FailurePlan.single(11.0, n - 1),
        )
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            MessageLoggingProtocol(period=0)
