"""End-to-end degraded recovery under storage faults.

The adversarial scenarios here follow ISSUE acceptance: a torn write
plus bit rot on the latest cut must force recovery from the deepest
fully-intact recovery line R_{i-1}, surfaced in the stats, with the
final result identical to a fault-free run; a corrupt checkpoint must
never be restored; and a zero-fault ``FaultPlan`` must reproduce the
seed behavior exactly.
"""

import pytest

from repro.errors import RecoveryError, SimulationError
from repro.lang.programs import ring_pipeline
from repro.protocols import (
    ApplicationDrivenProtocol,
    MessageLoggingProtocol,
    UncoordinatedProtocol,
)
from repro.runtime import (
    FailurePlan,
    FaultKind,
    FaultPlan,
    Simulation,
    StorageFaultEvent,
)
from repro.runtime.export import trace_to_json


def adversarial_plan():
    """Torn write punches a hole at R_6; bit rot lands on R_7 just
    before the crash — both members of the two latest cuts of the
    victim's peers, forcing fallback past R_7 *and* R_6 down to R_5."""
    return FaultPlan(
        crashes=[(19.5, 1)],
        storage_faults=[
            StorageFaultEvent(time=0.0, rank=0, kind=FaultKind.TORN_WRITE,
                              number=6),
            StorageFaultEvent(time=19.0, rank=2, kind=FaultKind.BIT_ROT,
                              number=7),
        ],
    )


def run_ring(program=None, fault_plan=None, **kwargs):
    return Simulation(
        program if program is not None else ring_pipeline(),
        3,
        params={"steps": 10},
        protocol=ApplicationDrivenProtocol(),
        failure_plan=fault_plan,
        **kwargs,
    ).run()


class TestDegradedRecovery:
    def test_falls_back_to_deepest_intact_cut(self):
        protocol = ApplicationDrivenProtocol()
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 10}, protocol=protocol,
            failure_plan=adversarial_plan(),
        ).run()
        assert result.stats.completed
        # R_7 is corrupt (bit rot), R_6 has a hole (torn write): the
        # deepest fully-intact straight cut is R_5, two lines down.
        assert protocol.recovered_to == [5]
        assert result.stats.recovery_fallbacks == 1
        assert result.stats.fallback_depths == [2]
        assert result.stats.max_fallback_depth == 2

    def test_fault_accounting_in_stats(self):
        result = run_ring(fault_plan=adversarial_plan())
        assert result.stats.torn_writes == 1
        assert result.stats.storage_write_failures == 1  # the torn one
        assert result.stats.bit_rot_injected == 1
        assert result.stats.corrupt_checkpoints == 1

    def test_degraded_result_matches_fault_free_run(self):
        baseline = run_ring()
        degraded = run_ring(fault_plan=adversarial_plan())
        assert degraded.final_env == baseline.final_env

    def test_corrupt_checkpoint_never_restored(self):
        sim = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
        )
        result = sim.run()
        assert result.stats.completed
        victim = sim.storage.latest(1)
        assert sim.storage.corrupt(1, number=victim.number)
        cut = {r: sim.storage.latest_with_number(r, victim.number)
               for r in range(3)}
        with pytest.raises(RecoveryError, match="corrupt checkpoint"):
            sim.restore_cut(cut, result.completion_time)

    def test_restore_single_refuses_corrupt(self):
        sim = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=ApplicationDrivenProtocol(),
        )
        result = sim.run()
        sim.storage.corrupt(2)
        with pytest.raises(RecoveryError, match="corrupt checkpoint"):
            sim.restore_single(sim.storage.latest(2), result.completion_time)

    def test_no_intact_cut_at_all_raises(self):
        # Rot out every checkpoint of rank 0, including the initial
        # R_0 snapshot: no straight cut survives.
        sim = Simulation(
            ring_pipeline(), 3, params={"steps": 3},
            protocol=ApplicationDrivenProtocol(),
        )
        sim.run()
        while sim.storage.corrupt(0):
            pass
        protocol = ApplicationDrivenProtocol()
        with pytest.raises(RecoveryError, match="no fully-intact"):
            protocol.deepest_intact_cut(sim)

    def test_write_fail_lowers_common_number_without_fallback(self):
        # Losing the *latest* checkpoint of one rank simply lowers the
        # deepest common number; that is normal recovery, not degraded.
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            storage_faults=[
                StorageFaultEvent(time=19.0, rank=0,
                                  kind=FaultKind.WRITE_FAIL),
            ],
        )
        result = run_ring(fault_plan=plan)
        assert result.stats.completed
        assert result.stats.storage_write_failures >= 1
        assert result.stats.recovery_fallbacks == 0

    def test_transient_fault_retries_and_completes(self):
        plan = FaultPlan(storage_faults=[
            StorageFaultEvent(time=5.0, rank=0, kind=FaultKind.TRANSIENT,
                              attempts=2),
        ])
        baseline = run_ring()
        result = run_ring(fault_plan=plan)
        assert result.stats.completed
        assert result.stats.storage_retries == 2
        assert result.stats.storage_write_failures == 0
        assert result.final_env == baseline.final_env
        # Backoff is charged to the simulated clock.
        assert result.completion_time > baseline.completion_time


class TestReplication:
    def test_minority_bit_rot_masked_by_quorum(self):
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            storage_faults=[
                StorageFaultEvent(time=19.0, rank=2, kind=FaultKind.BIT_ROT,
                                  number=7, replica=1),
            ],
        )
        protocol = ApplicationDrivenProtocol()
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 10}, protocol=protocol,
            failure_plan=plan, storage_replicas=3,
        ).run()
        assert result.stats.completed
        # Quorum (2/3 copies intact) masks the rot: no fallback.
        assert protocol.recovered_to == [7]
        assert result.stats.recovery_fallbacks == 0

    def test_replica_out_of_range_rejected(self):
        plan = FaultPlan(storage_faults=[
            StorageFaultEvent(time=1.0, rank=0, kind=FaultKind.BIT_ROT,
                              replica=2),
        ])
        with pytest.raises(SimulationError, match="replica"):
            Simulation(
                ring_pipeline(), 3, params={"steps": 3},
                failure_plan=plan, storage_replicas=2,
            )

    def test_invalid_replica_count_rejected(self):
        with pytest.raises(SimulationError, match="storage replica"):
            Simulation(ring_pipeline(), 3, params={"steps": 3},
                       storage_replicas=0)


class TestOtherProtocols:
    def test_uncoordinated_skips_corrupt_checkpoints(self):
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            storage_faults=[
                StorageFaultEvent(time=19.0, rank=2, kind=FaultKind.BIT_ROT),
            ],
        )
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=UncoordinatedProtocol(period=6.0),
            failure_plan=plan,
        ).run()
        assert result.stats.completed
        assert result.stats.recovery_fallbacks == 1
        assert result.stats.fallback_depths and result.stats.fallback_depths[0] >= 1

    def test_logging_protocol_skips_corrupt_latest(self):
        # Rot at the crash instant: bit rot sorts ahead of a same-time
        # crash, so it is guaranteed to hit the victim's latest
        # checkpoint (processes store optimistically ahead of the
        # global clock, so an earlier rot time can land on a
        # checkpoint that is no longer the latest by crash time).
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            storage_faults=[
                StorageFaultEvent(time=19.5, rank=1, kind=FaultKind.BIT_ROT),
            ],
        )
        baseline = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=MessageLoggingProtocol(period=6.0),
        ).run()
        result = Simulation(
            ring_pipeline(), 3, params={"steps": 10},
            protocol=MessageLoggingProtocol(period=6.0),
            failure_plan=plan,
        ).run()
        assert result.stats.completed
        assert result.stats.recovery_fallbacks == 1
        assert result.final_env == baseline.final_env


class TestDeterminism:
    def test_identical_traces_under_identical_fault_plan(self):
        # One program object for both runs: AST node ids come from a
        # global counter, so trace stmt_ids only line up when the
        # parsed program is shared.
        program = ring_pipeline()
        first = run_ring(program=program, fault_plan=adversarial_plan())
        second = run_ring(program=program, fault_plan=adversarial_plan())
        assert trace_to_json(first.trace) == trace_to_json(second.trace)
        assert first.stats == second.stats
        assert first.final_env == second.final_env
        assert first.completion_time == second.completion_time

    def test_zero_fault_plan_equivalent_to_no_plan(self):
        program = ring_pipeline()
        bare = run_ring(program=program)
        empty = run_ring(program=program, fault_plan=FaultPlan())
        assert trace_to_json(bare.trace) == trace_to_json(empty.trace)
        assert bare.stats == empty.stats
        assert bare.final_env == empty.final_env

    def test_crash_only_fault_plan_matches_failure_plan(self):
        program = ring_pipeline()
        legacy = run_ring(program=program,
                          fault_plan=FailurePlan.single(19.5, 1))
        modern = run_ring(program=program,
                          fault_plan=FaultPlan(crashes=[(19.5, 1)]))
        assert trace_to_json(legacy.trace) == trace_to_json(modern.trace)
        assert legacy.stats == modern.stats
