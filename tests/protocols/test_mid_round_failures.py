"""Crashes landing in the middle of coordinated rounds.

The hard edge for SaS/C-L: a failure while a round is in flight must
abort the round (stale control messages ignored), fall back to the last
*completed* round, and still finish with correct results.
"""

import pytest

from repro.lang.programs import jacobi_plain
from repro.protocols import ChandyLamportProtocol, SyncAndStopProtocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation
from repro.runtime.failures import CrashEvent


@pytest.fixture(scope="module")
def baseline():
    return Simulation(jacobi_plain(), 4, params={"steps": 20}).run()


def run_with_crashes(protocol, crashes):
    plan = FailurePlan(crashes=[CrashEvent(t, r) for t, r in crashes])
    return Simulation(
        jacobi_plain(), 4, params={"steps": 20},
        protocol=protocol, failure_plan=plan,
    ).run()


class TestSaSMidRound:
    def test_crash_right_after_round_start(self, baseline):
        protocol = SyncAndStopProtocol(period=8)
        # round starts at t=8; STOP messages land ~8.05
        result = run_with_crashes(protocol, [(8.2, 2)])
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_crash_between_stop_and_resume(self, baseline):
        protocol = SyncAndStopProtocol(period=8)
        # kill the coordinator itself mid-round
        result = run_with_crashes(protocol, [(8.1, 0)])
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_rounds_continue_after_recovery(self, baseline):
        protocol = SyncAndStopProtocol(period=6)
        result = run_with_crashes(protocol, [(6.2, 1)])
        assert result.stats.completed
        # at least one round completed after the crash
        assert protocol.completed_rounds
        assert result.final_env == baseline.final_env


class TestCLMidRound:
    def test_crash_during_marker_flood(self, baseline):
        protocol = ChandyLamportProtocol(period=8)
        result = run_with_crashes(protocol, [(8.07, 3)])
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_crash_of_initiator_mid_round(self, baseline):
        protocol = ChandyLamportProtocol(period=8)
        result = run_with_crashes(protocol, [(8.02, 0)])
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_two_crashes_spanning_rounds(self, baseline):
        protocol = ChandyLamportProtocol(period=7)
        result = run_with_crashes(protocol, [(7.1, 1), (15.0, 2)])
        assert result.stats.completed
        assert result.stats.rollbacks == 2
        assert result.final_env == baseline.final_env
