"""Uncoordinated and communication-induced protocol tests (V5)."""

import pytest

from repro.lang.parser import parse
from repro.lang.programs import jacobi_plain, pingpong
from repro.bench.workloads import strip_checkpoints
from repro.protocols import InducedProtocol, UncoordinatedProtocol
from repro.runtime import FailurePlan, RuntimeCosts, Simulation


class TestUncoordinated:
    def test_no_control_messages(self):
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 20},
            protocol=UncoordinatedProtocol(period=10),
        ).run()
        assert result.stats.control_messages == 0

    def test_staggered_checkpoints(self):
        protocol = UncoordinatedProtocol(period=10, stagger=0.8)
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 20}, protocol=protocol
        ).run()
        times = {
            rank: [c.time for c in result.storage.history(rank)[1:]]
            for rank in range(4)
        }
        firsts = [t[0] for t in times.values() if t]
        assert len(set(firsts)) > 1  # not aligned

    def test_recovery_finds_consistent_cut(self):
        protocol = UncoordinatedProtocol(period=7)
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 20}, protocol=protocol,
            failure_plan=FailurePlan.single(23.0, 1),
        ).run()
        assert result.stats.completed
        assert result.final_env == baseline.final_env
        assert len(protocol.rollback_depths) == 1

    def test_domino_effect_on_chatty_workload(self):
        """Tight ping-pong + staggered checkpoints: rollback cascades
        beyond the latest checkpoints (the domino effect)."""
        protocol = UncoordinatedProtocol(period=6, stagger=0.9)
        result = Simulation(
            strip_checkpoints(pingpong()), 4, params={"steps": 60},
            protocol=protocol,
            failure_plan=FailurePlan.single(21.0, 1),
        ).run()
        assert result.stats.completed
        assert protocol.domino_steps[0] >= 1

    def test_rollback_depth_recorded_per_process(self):
        protocol = UncoordinatedProtocol(period=6)
        Simulation(
            jacobi_plain(), 4, params={"steps": 20}, protocol=protocol,
            failure_plan=FailurePlan.single(20.0, 2),
        ).run()
        depths = protocol.rollback_depths[0]
        assert set(depths) == {0, 1, 2, 3}
        assert all(d >= 0 for d in depths.values())


class TestInduced:
    def test_no_control_messages(self):
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 20},
            protocol=InducedProtocol(period=10),
        ).run()
        assert result.stats.control_messages == 0

    def test_forced_checkpoints_on_index_lag(self):
        """With strongly staggered basic checkpoints, messages carry
        higher indices into lagging processes and force checkpoints."""
        protocol = InducedProtocol(period=6, stagger=3.0)
        result = Simulation(
            strip_checkpoints(pingpong()), 2, params={"steps": 60},
            protocol=protocol,
        ).run()
        assert result.stats.forced_checkpoints >= 1

    def test_indices_piggybacked(self):
        protocol = InducedProtocol(period=5)
        sim = Simulation(
            jacobi_plain(), 4, params={"steps": 20}, protocol=protocol
        )
        result = sim.run()
        carried = [
            m.piggyback.get("bcs_index")
            for m in sim.network.queued_messages()
        ]
        # all consumed; instead check protocol indexes advanced
        assert max(protocol._index.values()) >= 1
        assert result.stats.completed

    def test_recovery_bounded_by_index(self):
        protocol = InducedProtocol(period=7)
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        result = Simulation(
            jacobi_plain(), 4, params={"steps": 20}, protocol=protocol,
            failure_plan=FailurePlan.single(22.0, 3),
        ).run()
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_recovery_cut_respects_target_index(self):
        protocol = InducedProtocol(period=7)
        Simulation(
            jacobi_plain(), 4, params={"steps": 20}, protocol=protocol,
            failure_plan=FailurePlan.single(22.0, 0),
        ).run()
        # after recovery, every tracked index is <= the common target
        indexes = protocol._index.values()
        assert max(indexes) - min(indexes) <= max(1, len(indexes))

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            InducedProtocol(period=0)
