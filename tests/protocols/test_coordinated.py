"""SaS and Chandy-Lamport protocol tests."""

import pytest

from repro.causality.cuts import CheckpointCut, cut_is_consistent
from repro.causality.records import EventKind
from repro.lang.programs import jacobi_plain, token_ring
from repro.protocols import ChandyLamportProtocol, SyncAndStopProtocol
from repro.runtime import FailurePlan, Simulation


def run(protocol, make=jacobi_plain, n=4, steps=20, plan=None, seed=0):
    return Simulation(
        make(), n, params={"steps": steps}, protocol=protocol,
        failure_plan=plan, seed=seed,
    ).run()


def round_cut_consistent(result, tag_prefix, round_id, n):
    """Check a coordinated round's checkpoints by vector clocks."""
    members = []
    for rank in range(n):
        checkpoint = result.storage.latest_with_tag(rank, f"{tag_prefix}-{round_id}")
        if checkpoint is None:
            return None
        for event in result.trace.events_for(rank):
            if (
                event.kind is EventKind.CHECKPOINT
                and event.checkpoint_number == checkpoint.number
            ):
                members.append(event)
                break
    if len(members) != n:
        return None
    return cut_is_consistent(CheckpointCut(members=tuple(members)))


class TestSyncAndStop:
    def test_message_count_is_5_n_minus_1_per_round(self):
        protocol = SyncAndStopProtocol(period=10)
        result = run(protocol)
        rounds = len(protocol.completed_rounds)
        assert rounds >= 1
        assert result.stats.control_messages == rounds * 5 * 3

    def test_every_round_checkpoints_all_processes(self):
        protocol = SyncAndStopProtocol(period=10)
        result = run(protocol)
        for round_id in protocol.completed_rounds:
            for rank in range(4):
                assert result.storage.latest_with_tag(rank, f"sas-{round_id}")

    def test_round_cuts_are_consistent(self):
        protocol = SyncAndStopProtocol(period=10)
        result = run(protocol)
        for round_id in protocol.completed_rounds:
            assert round_cut_consistent(result, "sas", round_id, 4) is True

    def test_pause_slows_completion(self):
        bare = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        coordinated = run(SyncAndStopProtocol(period=5))
        assert coordinated.completion_time > bare.completion_time

    def test_recovery_restores_last_round(self):
        protocol = SyncAndStopProtocol(period=8)
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        result = run(protocol, plan=FailurePlan.single(25.0, 2))
        assert result.stats.completed
        assert result.stats.rollbacks == 1
        assert result.final_env == baseline.final_env

    def test_crash_before_first_round_restarts_initial(self):
        protocol = SyncAndStopProtocol(period=1000)
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 10}).run()
        result = run(protocol, steps=10, plan=FailurePlan.single(3.0, 1))
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SyncAndStopProtocol(period=0)


class TestChandyLamport:
    def test_markers_flood_all_channels(self):
        protocol = ChandyLamportProtocol(period=10)
        result = run(protocol)
        rounds = len(protocol.completed_rounds)
        assert rounds >= 1
        # n(n-1) markers + (n-1) acks per round
        per_round = 4 * 3 + 3
        assert result.stats.control_messages == rounds * per_round

    def test_execution_not_paused(self):
        """C-L's advantage over SaS: no stop-the-world. The pause cost
        surfaces on the critical path when coordination messages are
        slow (the paper's Figure 9 effect), so raise control latency
        on a compute-only workload (no app messages, so marker/channel
        ordering is irrelevant here)."""
        from repro.lang.parser import parse
        from repro.runtime import RuntimeCosts

        def busy():
            return parse(
                "program busy():\n"
                "    i = 0\n"
                "    while i < steps:\n"
                "        compute(3 + myrank * 2)\n"
                "        i = i + 1\n"
            )

        costs = RuntimeCosts(control_latency=1.0)
        cl = Simulation(
            busy(), 4, params={"steps": 40}, costs=costs,
            protocol=ChandyLamportProtocol(period=6),
        ).run()
        sas = Simulation(
            busy(), 4, params={"steps": 40}, costs=costs,
            protocol=SyncAndStopProtocol(period=6),
        ).run()
        assert cl.completion_time < sas.completion_time

    def test_snapshot_cuts_are_consistent(self):
        protocol = ChandyLamportProtocol(period=10)
        result = run(protocol)
        assert protocol.completed_rounds
        verdicts = [
            round_cut_consistent(result, "cl", round_id, 4)
            for round_id in protocol.completed_rounds
        ]
        # rounds started after some process finished have partial
        # coverage (None); every full round must be consistent
        assert True in verdicts
        assert False not in verdicts

    def test_snapshot_cuts_consistent_on_ring(self):
        protocol = ChandyLamportProtocol(period=12)
        result = run(protocol, make=token_ring, n=5, steps=20)
        assert protocol.completed_rounds
        verdicts = [
            round_cut_consistent(result, "cl", round_id, 5)
            for round_id in protocol.completed_rounds
        ]
        assert True in verdicts
        assert False not in verdicts

    def test_recovery_replays_correctly(self):
        baseline = Simulation(jacobi_plain(), 4, params={"steps": 20}).run()
        result = run(
            ChandyLamportProtocol(period=8), plan=FailurePlan.single(25.0, 0)
        )
        assert result.stats.completed
        assert result.final_env == baseline.final_env

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ChandyLamportProtocol(period=-1)
