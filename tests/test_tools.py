"""Tests for the results-regeneration tool."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_tool():
    spec = importlib.util.spec_from_file_location(
        "regenerate_results", REPO_ROOT / "tools" / "regenerate_results.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegenerateResults:
    def test_writes_all_artifacts(self, tmp_path, capsys):
        tool = load_tool()
        assert tool.main([str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "figure8.txt",
            "figure9.txt",
            "figure7_markov.txt",
            "protocol_comparison.txt",
            "optimal_intervals.txt",
            "checkpointing_payoff.txt",
            "fault_tolerance.txt",
            "network_faults.txt",
            "obs_overhead.txt",
            "campaign_scaling.txt",
            "BENCH_engine.json",
            "BENCH_checkpoint.json",
            "BENCH_transform.json",
        }

    def test_reports_per_result_timings(self, tmp_path, capsys):
        tool = load_tool()
        assert tool.main([str(tmp_path), "--only", "figure8"]) == 0
        out = capsys.readouterr().out
        assert "figure8:" in out
        assert "done: 1 result(s)" in out

    def test_unknown_generator_rejected(self, tmp_path, capsys):
        tool = load_tool()
        assert tool.main([str(tmp_path), "--only", "nope"]) == 2
        assert "unknown generator" in capsys.readouterr().err

    def test_obs_overhead_claims_hold(self, tmp_path, capsys):
        tool = load_tool()
        tool.main([str(tmp_path), "--only", "obs_overhead"])
        body = (tmp_path / "obs_overhead.txt").read_text()
        assert "disabled path is free: YES" in body
        assert "VIOLATED" not in body

    def test_campaign_scaling_claims_hold(self, tmp_path, capsys):
        tool = load_tool()
        tool.main([str(tmp_path), "--only", "campaign_scaling"])
        body = (tmp_path / "campaign_scaling.txt").read_text()
        assert "verdicts byte-identical across worker counts: YES" in body
        assert "VIOLATED" not in body
        assert "hit rate 0.50" in body

    def test_figures_record_shape_verdicts(self, tmp_path, capsys):
        tool = load_tool()
        tool.main(
            [str(tmp_path), "--only", "figure8", "--only", "figure9"]
        )
        assert "ALL HOLD" in (tmp_path / "figure8.txt").read_text()
        assert "ALL HOLD" in (tmp_path / "figure9.txt").read_text()

    def test_deterministic(self, tmp_path, capsys):
        tool = load_tool()
        first = tmp_path / "a"
        second = tmp_path / "b"
        only = ["--only", "figure8", "--only", "markov_validation",
                "--only", "protocol_comparison"]
        tool.main([str(first), *only])
        tool.main([str(second), *only])
        for name in ("figure8.txt", "figure7_markov.txt",
                     "protocol_comparison.txt"):
            assert (first / name).read_text() == (second / name).read_text()

    def test_parallel_output_matches_serial(self, tmp_path, capsys):
        tool = load_tool()
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        only = ["--only", "figure8", "--only", "protocol_comparison"]
        tool.main([str(serial), "--jobs", "1", *only])
        tool.main([str(parallel), "--jobs", "2", *only])
        for name in ("figure8.txt", "protocol_comparison.txt"):
            assert (serial / name).read_text() \
                == (parallel / name).read_text()
