"""Tests for the results-regeneration tool."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_tool():
    spec = importlib.util.spec_from_file_location(
        "regenerate_results", REPO_ROOT / "tools" / "regenerate_results.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegenerateResults:
    def test_writes_all_artifacts(self, tmp_path, capsys):
        tool = load_tool()
        assert tool.main([str(tmp_path)]) == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {
            "figure8.txt",
            "figure9.txt",
            "figure7_markov.txt",
            "protocol_comparison.txt",
            "optimal_intervals.txt",
            "checkpointing_payoff.txt",
            "fault_tolerance.txt",
            "network_faults.txt",
            "obs_overhead.txt",
        }

    def test_obs_overhead_claims_hold(self, tmp_path, capsys):
        tool = load_tool()
        tool.main([str(tmp_path)])
        body = (tmp_path / "obs_overhead.txt").read_text()
        assert "disabled path is free: YES" in body
        assert "VIOLATED" not in body

    def test_figures_record_shape_verdicts(self, tmp_path, capsys):
        tool = load_tool()
        tool.main([str(tmp_path)])
        assert "ALL HOLD" in (tmp_path / "figure8.txt").read_text()
        assert "ALL HOLD" in (tmp_path / "figure9.txt").read_text()

    def test_deterministic(self, tmp_path, capsys):
        tool = load_tool()
        first = tmp_path / "a"
        second = tmp_path / "b"
        tool.main([str(first)])
        tool.main([str(second)])
        for name in ("figure8.txt", "figure7_markov.txt",
                     "protocol_comparison.txt"):
            assert (first / name).read_text() == (second / name).read_text()
