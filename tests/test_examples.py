"""Every shipped example must run cleanly end to end.

Examples are the first code users run; breaking one is a release
blocker, so they execute here as subprocesses (import-isolated, like a
user would run them).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "jacobi_transform",
        "protocol_comparison",
        "failure_recovery",
        "mpmd_farm",
    } <= names
