"""Static hygiene: no unused imports in the library source.

A lightweight AST-based substitute for an external linter (the
environment is offline). ``__init__.py`` files are exempt — their
imports are re-exports.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _module_files():
    return sorted(
        path for path in SRC.rglob("*.py") if path.name != "__init__.py"
    )


def _imported_names(tree):
    names = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                names[bound] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                names[bound] = node.lineno
    return names


def _used_names(tree):
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # record the base of dotted access (module.attr)
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # string annotations under `from __future__ import annotations`
            used.update(
                part
                for part in node.value.replace("[", " ").replace("]", " ")
                .replace(".", " ").replace(",", " ").replace('"', " ")
                .split()
            )
    return used


@pytest.mark.parametrize(
    "path", _module_files(), ids=lambda p: str(p.relative_to(SRC))
)
def test_no_unused_imports(path):
    tree = ast.parse(path.read_text())
    imported = _imported_names(tree)
    used = _used_names(tree)
    unused = [
        f"{name} (line {line})"
        for name, line in imported.items()
        if name not in used and name != "annotations"
    ]
    assert not unused, f"{path.name}: unused imports: {unused}"
