"""CLI tests for trace export + analysis."""

import pytest

from repro.cli import main


@pytest.fixture
def safe_trace(tmp_path, capsys):
    path = tmp_path / "safe.json"
    assert main(
        ["simulate", "@jacobi", "-n", "4", "--steps", "3",
         "--export-trace", str(path)]
    ) == 0
    capsys.readouterr()
    return path


@pytest.fixture
def unsafe_trace(tmp_path, capsys):
    path = tmp_path / "unsafe.json"
    assert main(
        ["simulate", "@jacobi_odd_even", "-n", "4", "--steps", "3",
         "--export-trace", str(path)]
    ) == 0
    capsys.readouterr()
    return path


class TestExportAndAnalyze:
    def test_export_writes_json(self, safe_trace):
        import json

        data = json.loads(safe_trace.read_text())
        assert data["n_processes"] == 4
        assert data["events"]

    def test_analyze_safe_trace(self, safe_trace, capsys):
        assert main(["analyze", str(safe_trace)]) == 0
        out = capsys.readouterr().out
        assert "every straight cut is a recovery line" in out

    def test_analyze_unsafe_trace(self, unsafe_trace, capsys):
        assert main(["analyze", str(unsafe_trace)]) == 1
        out = capsys.readouterr().out
        assert "NOT recovery lines" in out
        assert "orphan witness" in out

    def test_analyze_reports_rollback_analysis(self, unsafe_trace, capsys):
        main(["analyze", str(unsafe_trace)])
        out = capsys.readouterr().out
        assert "max consistent cut" in out

    def test_analyze_with_spacetime(self, safe_trace, capsys):
        assert main(["analyze", str(safe_trace), "--spacetime"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.json"]) == 2
