"""End-to-end chaos tests: randomized fault schedules against all protocols.

The acceptance bar from the paper's robustness story: the reliable
transport must make an adversarial network invisible to every
checkpointing protocol. We draw hundreds of seed-deterministic
schedules (drops, duplicates, delays, corruption, partitions, crashes),
replay each against the three main protocols, and require completion,
recovery-line consistency on storage, and a final state identical to
the fault-free baseline. A deliberately-broken transport (receiver
dedup disabled) must be *caught* by the same harness and shrunk to a
minimal counterexample.
"""

import pytest

from repro.errors import SimulationError
from repro.lang.programs import ring_pipeline
from repro.protocols import ApplicationDrivenProtocol
from repro.runtime.chaos import (
    CHAOS_PROTOCOLS,
    ChaosConfig,
    ChaosOutcome,
    chaos_sweep,
    draw_schedule,
    dump_failure_artifacts,
    run_schedule,
    shrink_schedule,
)
from repro.runtime.engine import Simulation
from repro.runtime.failures import (
    FaultPlan,
    NetworkFaultKind,
    RecoveryFaultEvent,
    RecoveryFaultKind,
    exponential_network_plan,
)
from repro.runtime.transport import TransportConfig

CONFIG = ChaosConfig()


class TestScheduleDrawing:
    def test_same_seed_same_schedule(self):
        for seed in range(20):
            assert draw_schedule(seed, CONFIG) == draw_schedule(seed, CONFIG)

    def test_different_seeds_differ(self):
        plans = {repr(draw_schedule(seed, CONFIG)) for seed in range(20)}
        assert len(plans) > 15  # near-certainly all distinct

    def test_schedules_are_valid_plans(self):
        # FaultPlan validates at construction; drawing must never trip it.
        for seed in range(50):
            plan = draw_schedule(seed, CONFIG)
            assert plan.network_faults or plan.crashes

    def test_draw_respects_config_bounds(self):
        cfg = ChaosConfig(horizon=5.0, max_events=3, crash_probability=0.0)
        for seed in range(30):
            plan = draw_schedule(seed, cfg)
            assert not plan.crashes
            one_shots = [
                e for e in plan.network_faults
                if e.kind is not NetworkFaultKind.PARTITION
                and e.kind is not NetworkFaultKind.HEAL
            ]
            assert len(one_shots) <= 3
            for event in one_shots:
                assert 0.0 <= event.time < 5.0


class TestChaosSweep:
    """The headline property: ~200 random schedules, zero violations."""

    @pytest.mark.parametrize("protocol", CHAOS_PROTOCOLS)
    def test_seventy_schedules_per_protocol_all_hold(self, protocol):
        # 70 seeds x 3 protocols = 210 randomized schedules in total.
        outcomes = chaos_sweep(range(70), protocols=(protocol,))
        failures = {
            seed: outcome.describe()
            for (_, seed), outcome in outcomes.items()
            if not outcome.ok
        }
        assert not failures, failures

    @pytest.mark.parametrize("protocol", CHAOS_PROTOCOLS)
    def test_minimized_content_sweep_holds(self, protocol):
        # The same 210-schedule budget with liveness-pruned, delta-
        # encoded checkpoint content: content minimization must not
        # flip a single chaos verdict (the retention invariant already
        # accounts for pinned delta ancestors).
        config = ChaosConfig(checkpoint_mode="pruned+delta")
        outcomes = chaos_sweep(
            range(70), protocols=(protocol,), config=config
        )
        failures = {
            seed: outcome.describe()
            for (_, seed), outcome in outcomes.items()
            if not outcome.ok
        }
        assert not failures, failures

    def test_outcome_reports_fault_counts(self):
        plan = draw_schedule(3, CONFIG)
        outcome = run_schedule(plan, config=CONFIG)
        assert isinstance(outcome, ChaosOutcome)
        assert outcome.faults == len(plan.network_faults)
        assert "fault" in outcome.describe()

    def test_availability_one_at_low_drop_rates(self):
        # Paper-style availability claim: message-drop rates up to 10%
        # of traffic never prevent a run from completing.
        completed = total = 0
        for rate in (0.02, 0.05, 0.1):
            for seed in range(3):
                plan = exponential_network_plan(
                    3, 30.0, drop_rate=rate, seed=seed
                )
                outcome = run_schedule(plan, config=CONFIG)
                total += 1
                completed += outcome.completed
                assert outcome.ok, outcome.describe()
        assert completed == total  # availability 1.0


class TestByteIdenticalReplay:
    def test_identical_seed_and_plan_identical_result(self):
        plan = draw_schedule(7, CONFIG)

        def run():
            return Simulation(
                ring_pipeline(),
                CONFIG.n_processes,
                params={"steps": CONFIG.steps},
                protocol=ApplicationDrivenProtocol(),
                failure_plan=plan,
                seed=CONFIG.sim_seed,
            ).run()

        first, second = run(), run()
        assert repr(first.stats) == repr(second.stats)
        assert first.completion_time == second.completion_time
        assert first.final_env == second.final_env
        assert [repr(e) for e in first.trace.events] == [
            repr(e) for e in second.trace.events
        ]

    def test_replay_includes_retransmission_traffic(self):
        # The identity above must cover transport accounting, and a
        # chaotic plan must actually exercise it.
        plan = draw_schedule(7, CONFIG)
        result = Simulation(
            ring_pipeline(),
            CONFIG.n_processes,
            params={"steps": CONFIG.steps},
            protocol=ApplicationDrivenProtocol(),
            failure_plan=plan,
            seed=CONFIG.sim_seed,
        ).run()
        assert result.stats.frames_sent > 0
        assert result.stats.ack_frames > 0


class TestBrokenTransportShrinking:
    """The harness must catch a sabotaged transport and minimize it."""

    BROKEN = TransportConfig(dedup=False)
    QUIET = ChaosConfig(partition_probability=0.0, crash_probability=0.0)

    def _fails(self, plan: FaultPlan) -> bool:
        outcome = run_schedule(
            plan, config=self.QUIET, transport_config=self.BROKEN
        )
        return not outcome.ok

    def test_dedup_disabled_is_caught(self):
        plan = draw_schedule(0, self.QUIET)
        assert run_schedule(plan, config=self.QUIET).ok
        outcome = run_schedule(
            plan, config=self.QUIET, transport_config=self.BROKEN
        )
        assert not outcome.ok
        assert outcome.completed  # it finishes, but with divergent state
        assert not outcome.state_ok

    def test_failure_shrinks_to_minimal_counterexample(self):
        plan = draw_schedule(0, self.QUIET)
        assert self._fails(plan)
        minimal = shrink_schedule(plan, self._fails)
        events = len(minimal.network_faults) + len(minimal.crashes)
        assert events == 1
        assert self._fails(minimal)
        # 1-minimality: the empty schedule passes even on the broken
        # transport (no fault ever forces a retransmission, so dedup
        # never matters).
        assert not self._fails(FaultPlan())

    def test_shrink_rejects_passing_schedule(self):
        healthy = FaultPlan()
        with pytest.raises(SimulationError):
            shrink_schedule(healthy, self._fails)

    def test_shrink_skips_invalid_candidates(self):
        # A schedule whose failure needs the partitioned window: the
        # shrinker must not die on candidates that drop the partition
        # but keep the heal (invalid plans are skipped, not run).
        events = draw_schedule(0, self.QUIET).network_faults
        plan = FaultPlan(network_faults=list(events) + [
            type(events[0])(
                time=1.0, kind=NetworkFaultKind.PARTITION, src=0, dst=1
            ),
            type(events[0])(
                time=2.0, kind=NetworkFaultKind.HEAL, src=0, dst=1
            ),
        ])
        assert self._fails(plan)
        minimal = shrink_schedule(plan, self._fails)
        assert len(minimal.network_faults) >= 1


class TestRecoveryFaultSweep:
    """Recovery-time chaos: faults during rollback plus retention
    pressure, per ISSUE acceptance — every schedule must end in a
    byte-identical recovered state or a clean UNRECOVERABLE verdict,
    with GC never breaking recoverability."""

    RECOVERY = ChaosConfig(recovery_fault_probability=0.7, retain_k=2)

    def test_draw_is_legacy_stream_preserving(self):
        # Turning the feature off (p=0) must reproduce the pre-feature
        # schedules bit for bit — old seeds stay replayable.
        plain = ChaosConfig()
        disabled = ChaosConfig(recovery_fault_probability=0.0)
        for seed in range(30):
            assert draw_schedule(seed, plain) == draw_schedule(seed, disabled)

    def test_draw_produces_recovery_faults(self):
        drawn = sum(
            len(draw_schedule(seed, self.RECOVERY).recovery_faults)
            for seed in range(30)
        )
        assert drawn > 0

    def test_recovery_faults_only_strike_crashing_schedules(self):
        for seed in range(30):
            plan = draw_schedule(seed, self.RECOVERY)
            if plan.recovery_faults:
                assert plan.crashes

    @pytest.mark.parametrize("protocol", CHAOS_PROTOCOLS)
    @pytest.mark.parametrize("retain_k", [2, 4, None])
    def test_recovery_sweep_holds(self, protocol, retain_k):
        config = ChaosConfig(
            recovery_fault_probability=0.7, retain_k=retain_k
        )
        for seed in range(15):
            outcome = run_schedule(
                draw_schedule(seed, config), protocol, config
            )
            assert outcome.ok, (protocol, retain_k, seed, outcome.describe())

    def test_unrecoverable_verdict_is_clean_and_reported(self):
        # Find a schedule the supervisor gives up on; it must count as
        # ok (bounded termination) and be flagged in the outcome.
        for seed in range(40):
            outcome = run_schedule(
                draw_schedule(seed, self.RECOVERY), "appl-driven",
                self.RECOVERY,
            )
            if outcome.unrecoverable:
                assert outcome.ok
                assert not outcome.completed
                assert "[unrecoverable]" in outcome.describe()
                break
        else:
            pytest.skip("no unrecoverable schedule in the first 40 seeds")

    def test_unrecoverable_schedule_shrinks_and_replays(self, tmp_path):
        for seed in range(40):
            plan = draw_schedule(seed, self.RECOVERY)
            outcome = run_schedule(plan, "appl-driven", self.RECOVERY)
            if outcome.unrecoverable:
                break
        else:
            pytest.skip("no unrecoverable schedule in the first 40 seeds")
        paths = dump_failure_artifacts(
            plan, protocol="appl-driven", config=self.RECOVERY,
            out_dir=tmp_path, prefix="unrec",
        )
        assert paths["schedule"].exists()
        assert "shrunk" in paths
        minimal = FaultPlan.from_json_dict(
            __import__("json").loads(paths["shrunk"].read_text())
        )
        # The minimal counterexample still ends in the clean verdict.
        assert run_schedule(
            minimal, "appl-driven", self.RECOVERY
        ).unrecoverable
        assert len(minimal.crashes) + len(minimal.recovery_faults) <= (
            len(plan.crashes) + len(plan.recovery_faults)
        )

    def test_ddmin_handles_recovery_atoms(self):
        # A schedule failing *because of* its recovery fault must shrink
        # to (crash, recovery-fault) — network atoms dropped, the
        # recovery atom kept.
        plan = FaultPlan(
            crashes=[(19.5, 1)],
            network_faults=list(
                draw_schedule(0, ChaosConfig(crash_probability=0.0))
                .network_faults
            ),
            recovery_faults=[RecoveryFaultEvent(
                recovery=0, rank=1, kind=RecoveryFaultKind.CRASH,
                attempts=4,
            )],
        )
        config = ChaosConfig()

        def unrecoverable(candidate: FaultPlan) -> bool:
            return run_schedule(
                candidate, "appl-driven", config
            ).unrecoverable

        assert unrecoverable(plan)
        minimal = shrink_schedule(plan, unrecoverable)
        assert len(minimal.crashes) == 1
        assert len(minimal.recovery_faults) == 1
        assert not minimal.network_faults
