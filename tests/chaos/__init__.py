"""Chaos-schedule harness tests."""
