"""AST traversal helpers, builtins, and the program library."""

import pytest

from repro.errors import SimulationError
from repro.lang import ast_nodes as ast
from repro.lang.builtins import BUILTINS, call_builtin
from repro.lang.parser import parse
from repro.lang.programs import (
    load_program,
    program_names,
    program_source,
)


class TestWalk:
    def test_walk_yields_all_statements(self):
        program = parse(
            "program t():\n"
            "    x = 1\n"
            "    while i < 2:\n"
            "        if myrank == 0:\n"
            "            send(1, x)\n"
            "        else:\n"
            "            y = recv(0)\n"
        )
        kinds = [type(n).__name__ for n in ast.walk(program)]
        for expected in ("Program", "Block", "Assign", "While", "If", "Send", "Recv"):
            assert expected in kinds

    def test_walk_includes_expressions(self):
        program = parse("program t():\n    x = myrank + nprocs\n")
        kinds = {type(n).__name__ for n in ast.walk(program)}
        assert {"MyRank", "NProcs", "BinOp"} <= kinds

    def test_count_statements(self):
        program = load_program("jacobi")
        assert ast.count_statements(program, ast.Checkpoint) == 1
        assert ast.count_statements(program, ast.Send) == 2
        assert ast.count_statements(program, ast.Recv) == 2

    def test_count_with_tuple(self):
        program = load_program("jacobi")
        total = ast.count_statements(program, (ast.Send, ast.Recv))
        assert total == 4

    def test_block_len_and_iter(self):
        program = parse("program t():\n    x = 1\n    y = 2\n")
        assert len(program.body) == 2
        assert [s.target for s in program.body] == ["x", "y"]


class TestBuiltins:
    def test_min_max_abs(self):
        assert call_builtin("min", [3, 1, 2]) == 1
        assert call_builtin("max", [3, 1, 2]) == 3
        assert call_builtin("abs", [-5]) == 5

    def test_mixers_are_deterministic(self):
        for name in ("init", "combine", "relax"):
            assert call_builtin(name, [7, 9]) == call_builtin(name, [7, 9])

    def test_mixers_depend_on_arguments(self):
        assert call_builtin("combine", [1, 2]) != call_builtin("combine", [2, 1])

    def test_mixers_distinct_per_function(self):
        assert call_builtin("init", [5]) != call_builtin("relax", [5])

    def test_results_bounded(self):
        for name in BUILTINS:
            value = call_builtin(name, [123, 456][: 2 if name != "abs" else 1])
            assert 0 <= abs(value) < 2**31

    def test_unknown_builtin_raises(self):
        with pytest.raises(SimulationError, match="unknown builtin"):
            call_builtin("frobnicate", [1])


class TestProgramLibrary:
    def test_all_programs_parse(self):
        for name in program_names():
            program = load_program(name)
            assert program.name == name or program.name.startswith("jacobi")

    def test_load_returns_fresh_copies(self):
        a = load_program("jacobi")
        b = load_program("jacobi")
        assert a is not b
        a.body.statements.clear()
        assert len(b.body) > 0

    def test_unknown_program_raises_with_known_names(self):
        with pytest.raises(KeyError, match="jacobi"):
            load_program("nonexistent")

    def test_source_matches_parse(self):
        source = program_source("jacobi")
        assert "checkpoint" in source

    def test_plain_variant_has_no_checkpoints(self):
        program = load_program("jacobi_plain")
        assert ast.count_statements(program, ast.Checkpoint) == 0

    def test_odd_even_has_two_checkpoint_statements(self):
        program = load_program("jacobi_odd_even")
        assert ast.count_statements(program, ast.Checkpoint) == 2
