"""Tests for the structural AST clone that replaced ``copy.deepcopy``.

``ast.clone`` must be indistinguishable from ``deepcopy`` to every
consumer: same structure, same ``node_id``/``line`` on every node (CFG
node identity and the campaign byte-identity artifacts depend on it),
and full independence from the original.
"""

import copy

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.printer import ast_equal, to_source
from repro.lang.programs import load_program, program_names


@pytest.mark.parametrize("name", program_names())
class TestCloneEverything:
    def test_structurally_equal(self, name):
        program = load_program(name)
        cloned = ast.clone(program)
        assert cloned is not program
        assert ast_equal(cloned, program)
        assert to_source(cloned) == to_source(program)

    def test_node_ids_and_lines_preserved(self, name):
        program = load_program(name)
        cloned = ast.clone(program)
        originals = list(ast.walk(program))
        copies = list(ast.walk(cloned))
        assert len(originals) == len(copies)
        for original, duplicate in zip(originals, copies):
            assert original is not duplicate
            assert type(original) is type(duplicate)
            assert original.node_id == duplicate.node_id
            assert original.line == duplicate.line

    def test_matches_deepcopy(self, name):
        program = load_program(name)
        assert ast_equal(ast.clone(program), copy.deepcopy(program))


class TestIndependence:
    def test_mutating_clone_leaves_original_alone(self):
        program = load_program("jacobi")
        before = to_source(program)
        cloned = ast.clone(program)
        for node in ast.walk(cloned):
            if isinstance(node, ast.Block):
                node.statements[:] = [
                    s for s in node.statements
                    if not isinstance(s, ast.Checkpoint)
                ]
        assert to_source(program) == before
        assert to_source(cloned) != before

    def test_clone_of_clone(self):
        program = load_program("token_ring")
        twice = ast.clone(ast.clone(program))
        assert ast_equal(twice, program)
