"""MPMD synthesis tests (the paper's §3 MPMD claim)."""

import pytest

from repro.errors import LanguageError
from repro.lang import ast_nodes as ast
from repro.lang.mpmd import RankSet, Role, combine_mpmd, role_of_rank
from repro.lang.parser import parse
from repro.phases import ensure_recovery_lines, verify_program
from repro.runtime import Simulation

COORDINATOR_SOURCE = """\
program coordinator():
    i = 0
    while i < steps:
        checkpoint
        task = init(i)
        w = 1
        while w < nprocs:
            send(w, combine(task, w))
            w = w + 1
        w = 1
        while w < nprocs:
            r = recv(w)
            task = combine(task, r)
            w = w + 1
        i = i + 1
"""

WORKER_SOURCE = """\
program worker():
    i = 0
    while i < steps:
        checkpoint
        job = recv(0)
        compute(4)
        send(0, relax(job, myrank))
        i = i + 1
"""


def roles():
    return [
        Role(parse(COORDINATOR_SOURCE), RankSet.exact(0)),
        Role(parse(WORKER_SOURCE), RankSet.rest()),
    ]


class TestRankSet:
    def test_exact_members(self):
        assert RankSet.exact(0, 2).members(4) == frozenset({0, 2})

    def test_exact_filters_out_of_range(self):
        assert RankSet.exact(0, 9).members(4) == frozenset({0})

    def test_range_members(self):
        assert RankSet.range(1, 3).members(5) == frozenset({1, 2})

    def test_range_open_end(self):
        assert RankSet.range(2).members(5) == frozenset({2, 3, 4})

    def test_negative_bounds_relative_to_nprocs(self):
        assert RankSet.range(-2).members(6) == frozenset({4, 5})
        assert RankSet.range(0, -1).members(4) == frozenset({0, 1, 2})

    def test_exact_predicate_is_rank_test(self):
        predicate = RankSet.exact(3).predicate()
        assert isinstance(predicate, ast.BinOp) and predicate.op == "=="

    def test_rest_has_no_predicate(self):
        with pytest.raises(LanguageError):
            RankSet.rest().predicate()

    def test_exact_needs_ranks(self):
        with pytest.raises(LanguageError):
            RankSet.exact()


class TestCombine:
    def test_dispatch_structure(self):
        program = combine_mpmd(roles())
        top = program.body.statements[0]
        assert isinstance(top, ast.If)

    def test_role_of_rank(self):
        rs = roles()
        assert role_of_rank(rs, 0, 4) == 0
        assert role_of_rank(rs, 3, 4) == 1

    def test_unassigned_rank(self):
        only = [Role(parse(WORKER_SOURCE), RankSet.exact(1))]
        assert role_of_rank(only, 2, 4) is None

    def test_rest_must_be_last(self):
        bad = [
            Role(parse(WORKER_SOURCE), RankSet.rest()),
            Role(parse(COORDINATOR_SOURCE), RankSet.exact(0)),
        ]
        with pytest.raises(LanguageError, match="last"):
            combine_mpmd(bad)

    def test_single_rest_role_only(self):
        bad = [
            Role(parse(WORKER_SOURCE), RankSet.rest()),
            Role(parse(COORDINATOR_SOURCE), RankSet.rest()),
        ]
        with pytest.raises(LanguageError, match="one 'rest'"):
            combine_mpmd(bad)

    def test_inputs_not_mutated(self):
        rs = roles()
        before = len(rs[0].program.body.statements)
        combine_mpmd(rs)
        assert len(rs[0].program.body.statements) == before

    def test_empty_roles_rejected(self):
        with pytest.raises(LanguageError):
            combine_mpmd([])


class TestMpmdPipeline:
    def test_combined_program_verifies_same_iteration(self):
        """Per-role checkpoints are distinct CFG nodes, so conservative
        mode flags the cross-role back-edge paths; the loop-optimised
        check (same-iteration paths only) accepts the placement, and
        the simulator confirms it is safe."""
        program = combine_mpmd(roles())
        assert not verify_program(program, include_back_edge_paths=True).ok
        assert verify_program(program, include_back_edge_paths=False).ok

    def test_conservative_repair_hoists_to_common_point(self):
        program = combine_mpmd(roles())
        repaired = ensure_recovery_lines(program)
        assert verify_program(repaired.program).ok
        trace = Simulation(
            repaired.program, 4, params={"steps": 4}
        ).run().trace
        assert trace.all_straight_cuts_consistent()

    def test_combined_program_simulates(self):
        program = combine_mpmd(roles())
        result = Simulation(program, 4, params={"steps": 4}).run()
        assert result.stats.completed
        assert result.trace.all_straight_cuts_consistent()

    def test_unsafe_mpmd_repaired(self):
        """A worker variant that checkpoints after its receive breaks
        Condition 1; Phase III must repair the combined program."""
        late_worker = parse(
            "program worker():\n"
            "    i = 0\n"
            "    while i < steps:\n"
            "        job = recv(0)\n"
            "        checkpoint\n"
            "        compute(4)\n"
            "        send(0, relax(job, myrank))\n"
            "        i = i + 1\n"
        )
        program = combine_mpmd(
            [
                Role(parse(COORDINATOR_SOURCE), RankSet.exact(0)),
                Role(late_worker, RankSet.rest()),
            ]
        )
        assert not verify_program(program).ok
        repaired = ensure_recovery_lines(program)
        assert verify_program(repaired.program).ok
        trace = Simulation(
            repaired.program, 4, params={"steps": 4}
        ).run().trace
        assert trace.all_straight_cuts_consistent()

    def test_three_role_pipeline(self):
        source = parse(
            "program source():\n"
            "    i = 0\n"
            "    while i < steps:\n"
            "        checkpoint\n"
            "        send(1, init(i))\n"
            "        i = i + 1\n"
        )
        filter_role = parse(
            "program filter():\n"
            "    i = 0\n"
            "    while i < steps:\n"
            "        checkpoint\n"
            "        v = recv(0)\n"
            "        send(2, relax(v, 1))\n"
            "        i = i + 1\n"
        )
        sink = parse(
            "program sink():\n"
            "    acc = 0\n"
            "    i = 0\n"
            "    while i < steps:\n"
            "        checkpoint\n"
            "        v = recv(1)\n"
            "        acc = combine(acc, v)\n"
            "        i = i + 1\n"
        )
        program = combine_mpmd(
            [
                Role(source, RankSet.exact(0)),
                Role(filter_role, RankSet.exact(1)),
                Role(sink, RankSet.exact(2)),
            ]
        )
        assert verify_program(program, include_back_edge_paths=False).ok
        result = Simulation(program, 3, params={"steps": 5}).run()
        assert result.stats.completed
        assert result.trace.all_straight_cuts_consistent()
