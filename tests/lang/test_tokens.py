"""Lexer tests."""

import pytest

from repro.errors import LexerError
from repro.lang.tokens import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.value]


class TestBasicTokens:
    def test_number(self):
        tokens = tokenize("x = 42\n")
        number = [t for t in tokens if t.kind is TokenKind.NUMBER]
        assert [t.value for t in number] == ["42"]

    def test_name_vs_keyword(self):
        tokens = tokenize("while foo\n")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.NAME

    def test_all_keywords_recognised(self):
        for word in ("program", "if", "else", "while", "send", "recv",
                     "checkpoint", "myrank", "nprocs", "input"):
            token = tokenize(word)[0]
            assert token.kind is TokenKind.KEYWORD, word

    def test_multi_char_operators_prefer_longest(self):
        assert values("a == b") == ["a", "==", "b"]
        assert values("a <= b") == ["a", "<=", "b"]
        assert values("a // b") == ["a", "//", "b"]

    def test_single_char_operators(self):
        assert values("(a + b) * c") == ["(", "a", "+", "b", ")", "*", "c"]

    def test_underscore_names(self):
        token = tokenize("my_var_1")[0]
        assert token.kind is TokenKind.NAME
        assert token.value == "my_var_1"

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("x = 1\n")[-1].kind is TokenKind.EOF


class TestIndentation:
    def test_indent_dedent_pairing(self):
        source = "if a:\n    b = 1\nc = 2\n"
        ks = kinds(source)
        assert ks.count(TokenKind.INDENT) == 1
        assert ks.count(TokenKind.DEDENT) == 1

    def test_nested_indentation(self):
        source = "if a:\n    if b:\n        c = 1\n"
        ks = kinds(source)
        assert ks.count(TokenKind.INDENT) == 2
        assert ks.count(TokenKind.DEDENT) == 2

    def test_dedent_to_outer_level(self):
        source = "if a:\n    if b:\n        c = 1\nd = 2\n"
        ks = kinds(source)
        assert ks.count(TokenKind.DEDENT) == 2

    def test_trailing_dedents_emitted_at_eof(self):
        source = "if a:\n    b = 1"
        ks = kinds(source)
        assert ks.count(TokenKind.DEDENT) == 1

    def test_inconsistent_dedent_raises(self):
        source = "if a:\n        b = 1\n    c = 2\n"
        with pytest.raises(LexerError, match="inconsistent dedent"):
            tokenize(source)

    def test_blank_lines_ignored(self):
        assert kinds("a = 1\n\n\nb = 2\n") == kinds("a = 1\nb = 2\n")

    def test_comment_lines_ignored(self):
        assert kinds("a = 1\n# comment\nb = 2\n") == kinds("a = 1\nb = 2\n")

    def test_trailing_comment_stripped(self):
        assert values("a = 1  # trailing\n") == ["a", "=", "1"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a = @b\n")
        assert excinfo.value.line == 1

    def test_error_reports_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("ok = 1\nbad = $\n")
        assert excinfo.value.line == 2


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a = 1\nb = 2\n")
        a = next(t for t in tokens if t.value == "a")
        b = next(t for t in tokens if t.value == "b")
        assert a.line == 1 and b.line == 2

    def test_column_accounts_for_indent(self):
        tokens = tokenize("if x:\n    y = 1\n")
        y = next(t for t in tokens if t.value == "y")
        assert y.column == 4

    def test_token_repr_is_informative(self):
        token = Token(TokenKind.NAME, "foo", 3, 7)
        assert "foo" in repr(token)
