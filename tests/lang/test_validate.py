"""Static-validator tests."""

import pytest

from repro.lang.parser import parse
from repro.lang.programs import load_program, program_names, default_params
from repro.lang.validate import validate_program


def program(statements: str):
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n")


def messages(diagnostics):
    return [d.message for d in diagnostics]


class TestBindings:
    def test_clean_program(self):
        assert validate_program(program("x = 1\ny = x + 1")) == []

    def test_use_before_assignment(self):
        diagnostics = validate_program(program("y = x + 1"))
        assert any("'x'" in m for m in messages(diagnostics))

    def test_parameters_are_prebound(self):
        source = program("i = 0\nwhile i < steps:\n    i = i + 1")
        assert validate_program(source) == []
        diagnostics = validate_program(source, params=())
        assert any("'steps'" in m for m in messages(diagnostics))

    def test_branch_join_requires_both_arms(self):
        source = program(
            "if myrank == 0:\n    x = 1\nelse:\n    y = 2\nz = x"
        )
        diagnostics = validate_program(source)
        assert any("'x'" in m for m in messages(diagnostics))

    def test_both_arms_binding_is_clean(self):
        source = program(
            "if myrank == 0:\n    x = 1\nelse:\n    x = 2\nz = x"
        )
        assert validate_program(source) == []

    def test_recv_and_bcast_bind(self):
        source = program(
            "if myrank == 0:\n    send(1, 5)\n    v = bcast(0, 1)\n"
            "else:\n    y = recv(0)\n    v = bcast(0, 1)\n"
            "z = v"
        )
        assert validate_program(source) == []

    def test_for_variable_bound_in_body(self):
        source = program("t = 0\nfor k in range(3):\n    t = t + k")
        assert validate_program(source) == []

    def test_diagnostic_has_line(self):
        diagnostics = validate_program(program("y = ghost"))
        assert diagnostics[0].line == 2
        assert "error" in str(diagnostics[0])


class TestEndpoints:
    def test_always_out_of_range_destination(self):
        diagnostics = validate_program(program("send(nprocs, 1)"))
        assert any("out of range" in m for m in messages(diagnostics))

    def test_negative_constant_source(self):
        diagnostics = validate_program(program("y = recv(0 - 5)"))
        assert any("out of range" in m for m in messages(diagnostics))

    def test_sometimes_valid_endpoint_not_flagged(self):
        # myrank + 1 is invalid only for the last rank; not "always"
        assert validate_program(program("send(myrank + 1, 1)")) == []

    def test_unknown_endpoint_not_flagged(self):
        assert validate_program(
            program("send(input(t) % nprocs, 1)")
        ) == []

    def test_self_send_flagged(self):
        diagnostics = validate_program(program("send(myrank, 1)"))
        assert any("sender itself" in m for m in messages(diagnostics))

    def test_bcast_root_checked(self):
        diagnostics = validate_program(program("v = bcast(nprocs + 3, 1)"))
        assert any("broadcast root" in m for m in messages(diagnostics))


class TestBalanceWarning:
    def test_unbalanced_checkpoints_warn(self):
        source = program(
            "if myrank == 0:\n    checkpoint\nelse:\n    pass"
        )
        diagnostics = validate_program(source)
        warnings = [d for d in diagnostics if d.severity == "warning"]
        assert warnings and "checkpoint counts differ" in warnings[0].message

    def test_balanced_program_no_warning(self):
        assert validate_program(load_program("jacobi")) == []


class TestShippedPrograms:
    @pytest.mark.parametrize("name", program_names())
    def test_all_shipped_programs_validate_clean(self, name):
        params = tuple(default_params(name))
        assert validate_program(load_program(name), params=params) == []
