"""Property test: print -> parse -> compile preserves the effect stream.

For random generator programs (both skeleton families, both checkpoint
placements), lowering the *reparsed* source through the closure
compiler must produce exactly the effect stream the tree-walking
interpreter yields on the *original* AST — same effects in the same
order with the same payloads, same environment evolution, same
checkpoint count. Going through the printer and parser first is the
point: it proves the compiler keys on program *meaning*, not on the
specific AST object identities (node ids are process-global, so the
reparsed program shares none of them).

Receives are satisfied with a deterministic synthetic value stream on
both sides (no engine, no network — this isolates the per-process
execution semantics), and every drive is bounded by a step budget so a
miscompiled loop cannot hang the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.compile import compile_program
from repro.lang.generator import (
    generate_exchange_program,
    generate_ring_program,
)
from repro.lang.parser import parse
from repro.lang.printer import to_source
from repro.runtime.effects import (
    BcastRecvEffect,
    BcastSendEffect,
    CheckpointEffect,
    ComputeEffect,
    LocalEffect,
    RecvEffect,
    SendEffect,
)
from repro.runtime.interpreter import ProcessInterpreter

NPROCS = 4
STEP_BUDGET = 600


def effect_signature(effect):
    """An effect as comparable plain data (AST back-references dropped).

    ``SendEffect`` and friends carry their originating AST node; those
    differ by construction across a reparse, so the signature keeps
    only the semantic payload.
    """
    if effect is None:
        return ("finished",)
    if isinstance(effect, LocalEffect):
        return ("local", effect.description)
    if isinstance(effect, ComputeEffect):
        return ("compute", effect.cost)
    if isinstance(effect, SendEffect):
        return ("send", effect.dest, effect.value)
    if isinstance(effect, RecvEffect):
        return ("recv", effect.source, effect.target)
    if isinstance(effect, BcastSendEffect):
        return ("bcast-send", effect.value)
    if isinstance(effect, BcastRecvEffect):
        return ("bcast-recv", effect.root, effect.target)
    if isinstance(effect, CheckpointEffect):
        return ("checkpoint",)
    return (type(effect).__name__,)


def drive(proc):
    """Run one process to completion (or budget), feeding synthetic recvs.

    Returns the full observable history: the effect stream plus the
    environment after every step (so a divergence is caught at the step
    it happens, not just at the end), and the final process state.
    """
    history = []
    synthetic = 1_000  # deterministic value stream for delivered recvs
    for _ in range(STEP_BUDGET):
        effect = proc.step()
        history.append((effect_signature(effect), dict(proc.env)))
        if effect is None:
            break
        if proc.awaiting_delivery:
            synthetic += 1
            proc.deliver(synthetic)
    return (
        tuple(history),
        dict(proc.env),
        proc.checkpoint_count,
        proc.finished,
    )


FAMILIES = {
    "exchange": generate_exchange_program,
    "ring": generate_ring_program,
}


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    family=st.sampled_from(sorted(FAMILIES)),
    placement=st.sampled_from(("head", "split")),
    rank=st.integers(min_value=0, max_value=NPROCS - 1),
    steps=st.integers(min_value=1, max_value=3),
)
def test_compiled_roundtrip_matches_reference(
    seed, family, placement, rank, steps
):
    original = FAMILIES[family](seed, checkpoint_position=placement)
    reparsed = parse(to_source(original))
    params = {"steps": steps}

    reference = ProcessInterpreter(original, rank, NPROCS, params=dict(params))
    compiled = compile_program(reparsed, NPROCS).bind(rank, params=dict(params))

    assert drive(compiled) == drive(reference)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    family=st.sampled_from(sorted(FAMILIES)),
)
def test_printed_source_is_stable(seed, family):
    """The printer is a fixpoint over generator programs (sanity check:
    the round-trip above tests semantics; this pins the syntax)."""
    source = to_source(FAMILIES[family](seed))
    assert to_source(parse(source)) == source
