"""Parser tests: every construct, operator precedence, error positions."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def parse_body(statements: str) -> ast.Block:
    indented = "\n".join("    " + line for line in statements.splitlines())
    return parse(f"program t():\n{indented}\n").body


def parse_expr(text: str) -> ast.Expr:
    block = parse_body(f"x = {text}")
    return block.statements[0].value


class TestProgramStructure:
    def test_program_name(self):
        program = parse("program demo():\n    pass\n")
        assert program.name == "demo"
        assert len(program.body) == 1

    def test_missing_program_keyword(self):
        with pytest.raises(ParseError, match="program"):
            parse("x = 1\n")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("program t():\n    pass\nprogram u():\n    pass\nxx\n")


class TestSimpleStatements:
    def test_assign(self):
        stmt = parse_body("x = 3").statements[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.target == "x"
        assert isinstance(stmt.value, ast.Const) and stmt.value.value == 3

    def test_send(self):
        stmt = parse_body("send(1, x)").statements[0]
        assert isinstance(stmt, ast.Send)
        assert isinstance(stmt.dest, ast.Const)

    def test_recv(self):
        stmt = parse_body("y = recv(myrank - 1)").statements[0]
        assert isinstance(stmt, ast.Recv)
        assert stmt.target == "y"
        assert isinstance(stmt.source, ast.BinOp)

    def test_bcast(self):
        stmt = parse_body("v = bcast(0, x)").statements[0]
        assert isinstance(stmt, ast.Bcast)
        assert stmt.target == "v"

    def test_checkpoint(self):
        stmt = parse_body("checkpoint").statements[0]
        assert isinstance(stmt, ast.Checkpoint)

    def test_compute(self):
        stmt = parse_body("compute(5)").statements[0]
        assert isinstance(stmt, ast.Compute)

    def test_pass(self):
        stmt = parse_body("pass").statements[0]
        assert isinstance(stmt, ast.Pass)

    def test_statements_carry_line_numbers(self):
        block = parse_body("x = 1\ny = 2")
        assert block.statements[0].line == 2
        assert block.statements[1].line == 3


class TestCompoundStatements:
    def test_if_without_else(self):
        stmt = parse_body("if myrank == 0:\n    x = 1").statements[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_block) == 1
        assert len(stmt.else_block) == 0

    def test_if_else(self):
        stmt = parse_body(
            "if myrank == 0:\n    x = 1\nelse:\n    x = 2"
        ).statements[0]
        assert len(stmt.else_block) == 1

    def test_elif_desugars_to_nested_if(self):
        stmt = parse_body(
            "if a == 0:\n    x = 1\nelif a == 1:\n    x = 2\nelse:\n    x = 3"
        ).statements[0]
        assert isinstance(stmt, ast.If)
        nested = stmt.else_block.statements[0]
        assert isinstance(nested, ast.If)
        assert len(nested.else_block) == 1

    def test_while(self):
        stmt = parse_body("while i < 10:\n    i = i + 1").statements[0]
        assert isinstance(stmt, ast.While)
        assert len(stmt.body) == 1

    def test_for(self):
        stmt = parse_body("for k in range(4):\n    compute(k)").statements[0]
        assert isinstance(stmt, ast.For)
        assert stmt.var == "k"

    def test_nested_compounds(self):
        stmt = parse_body(
            "while i < 2:\n    if myrank == 0:\n        send(1, x)\n"
            "    else:\n        y = recv(0)\n    i = i + 1"
        ).statements[0]
        inner = stmt.body.statements[0]
        assert isinstance(inner, ast.If)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison(self):
        expr = parse_expr("myrank % 2 == 0")
        assert expr.op == "=="
        assert expr.left.op == "%"

    def test_boolean_precedence(self):
        expr = parse_expr("a == 1 or b == 2 and c == 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = parse_expr("not a == b")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "not"

    def test_unary_minus(self):
        expr = parse_expr("-myrank")
        assert isinstance(expr, ast.UnaryOp)
        assert isinstance(expr.operand, ast.MyRank)

    def test_myrank_nprocs(self):
        assert isinstance(parse_expr("myrank"), ast.MyRank)
        assert isinstance(parse_expr("nprocs"), ast.NProcs)

    def test_true_false_literals(self):
        assert parse_expr("True").value == 1
        assert parse_expr("False").value == 0

    def test_input_expression(self):
        expr = parse_expr("input(routing)")
        assert isinstance(expr, ast.InputData)
        assert expr.label == "routing"

    def test_call_with_args(self):
        expr = parse_expr("combine(x, y)")
        assert isinstance(expr, ast.Call)
        assert expr.func == "combine"
        assert len(expr.args) == 2

    def test_call_no_args(self):
        expr = parse_expr("init()")
        assert expr.args == []


class TestParseErrors:
    @pytest.mark.parametrize(
        "body",
        [
            "x =",
            "send(1)",
            "send 1, x",
            "if myrank:",
            "y = recv()",
            "for k in 4:\n    pass",
            "x = (1 + 2",
            "x = 1 +",
            "checkpoint()",
        ],
    )
    def test_malformed_statement_raises(self, body):
        with pytest.raises(ParseError):
            parse_body(body)

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_body("x = 1\ny = *")
        assert excinfo.value.line == 3


class TestNodeIds:
    def test_node_ids_unique_within_program(self):
        program = parse_body("x = 1\ny = 2\nif x == y:\n    pass")
        ids = [node.node_id for node in ast.walk(program)]
        assert len(ids) == len(set(ids))
