"""Pretty-printer tests, including the parse/print round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.generator import generate_exchange_program
from repro.lang.parser import parse
from repro.lang.printer import ast_equal, expr_to_source, to_source
from repro.lang.programs import load_program, program_names


class TestExpressionRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "myrank % 2 == 0",
            "-myrank + 1",
            "not a == b",
            "a == 1 or b == 2 and c == 3",
            "(a or b) and c",
            "combine(x, input(noise))",
            "(myrank + 1) % nprocs",
            "10 - 4 - 3",
            "10 - (4 - 3)",
            "min(a, max(b, c))",
        ],
    )
    def test_expression_round_trip(self, text):
        def reparse(t):
            return parse(f"program t():\n    x = {t}\n").body.statements[0].value

        original = reparse(text)
        rendered = expr_to_source(original)
        assert ast_equal(original, reparse(rendered))

    def test_true_false_render_as_ints(self):
        expr = parse("program t():\n    x = True\n").body.statements[0].value
        assert expr_to_source(expr) == "1"


class TestProgramRendering:
    @pytest.mark.parametrize("name", program_names())
    def test_shipped_programs_round_trip(self, name):
        program = load_program(name)
        assert ast_equal(program, parse(to_source(program)))

    def test_empty_block_renders_pass(self):
        program = parse("program t():\n    if myrank == 0:\n        x = 1\n")
        source = to_source(program)
        # The empty else block disappears; re-parsing must still work.
        assert ast_equal(program, parse(source))

    def test_output_ends_with_newline(self):
        program = load_program("jacobi")
        assert to_source(program).endswith("\n")

    def test_checkpoint_renders_bare(self):
        program = parse("program t():\n    checkpoint\n")
        assert "checkpoint" in to_source(program).splitlines()[1].strip()


class TestAstEqual:
    def test_ignores_node_ids_and_lines(self):
        a = parse("program t():\n    x = 1\n")
        b = parse("program t():\n\n    x = 1\n")
        assert ast_equal(a, b)

    def test_detects_value_difference(self):
        a = parse("program t():\n    x = 1\n")
        b = parse("program t():\n    x = 2\n")
        assert not ast_equal(a, b)

    def test_detects_structural_difference(self):
        a = parse("program t():\n    x = 1\n")
        b = parse("program t():\n    x = 1\n    y = 2\n")
        assert not ast_equal(a, b)

    def test_detects_type_difference(self):
        a = parse("program t():\n    checkpoint\n")
        b = parse("program t():\n    pass\n")
        assert not ast_equal(a, b)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        position=st.sampled_from(["head", "split"]),
    )
    def test_generated_programs_round_trip(self, seed, position):
        program = generate_exchange_program(seed, checkpoint_position=position)
        assert ast_equal(program, parse(to_source(program)))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_print_is_idempotent(self, seed):
        program = generate_exchange_program(seed)
        once = to_source(program)
        twice = to_source(parse(once))
        assert once == twice
